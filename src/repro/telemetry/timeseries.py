"""Time-series scraping of a :class:`MetricsRegistry` over simulated time.

PR 1's registry is a *point-in-time* surface: you can snapshot it at the
end of a run, but you cannot ask "what was the error rate between t=2.0
and t=2.5?" — which is exactly the question SLO burn-rate alerting (and
the paper's production monitoring) needs answered. This module adds the
missing dimension: a :class:`Scraper` samples every family of a registry
at a fixed simulated-time interval into ring-buffered, labeled
:class:`TimeSeries`, with Prometheus-style ``increase``/``rate`` reads
over arbitrary windows and label subsets.

The scraper is driven by a :meth:`Simulator.add_tap
<repro.sim.core.Simulator.add_tap>` clock tap, *not* by a scheduled
process: taps fire synchronously as the run loop advances time and
consume no scheduling sequence numbers, so a scraped run executes an
event sequence identical to an unscraped run of the same seed (the
seed-for-seed parity guarantee the observability plane is built on).

Sampled fields per series:

* counters / gauges — ``value``
* histograms — ``count`` (exact and O(1) to read; ``sum`` is optional
  via ``histogram_sum=True`` and costs a full-reservoir ``fsum`` per
  scrape, so it defaults off for scale runs)

Retention is bounded two ways: each series ring-buffers at most
``retention_points`` samples, and ``retention_seconds`` (if set) drops
points older than the horizon — size it at or above your longest alert
window, since ``increase`` treats a missing baseline as zero (counter
semantics: counters start at zero).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

Point = Tuple[float, float]


class TimeSeries:
    """One scraped stream: ``(metric name, label set, field)`` over time.

    Points are ``(sim_time, value)`` pairs in strictly increasing time
    order, ring-buffered to the scraper's retention. A parallel deque of
    timestamps is maintained on append/eviction so :meth:`value_at` can
    bisect directly — rebuilding a timestamp list per read would make
    ``increase``/``rate`` O(n) and SLO evaluation quadratic over a run.
    """

    __slots__ = ("name", "field", "labels", "kind", "points", "_times")

    def __init__(self, name: str, field: str, labels: Dict[str, str],
                 kind: str, maxlen: Optional[int]):
        self.name = name
        self.field = field
        self.labels = labels
        self.kind = kind
        self.points: Deque[Point] = deque(maxlen=maxlen)
        self._times: Deque[float] = deque(maxlen=maxlen)

    def append(self, t: float, value: float) -> None:
        # Both deques share one maxlen, so ring-buffer eviction keeps
        # them aligned without explicit bookkeeping.
        self.points.append((t, value))
        self._times.append(t)

    def evict_before(self, horizon: float) -> None:
        """Drop points older than ``horizon`` (retention_seconds)."""
        pts, times = self.points, self._times
        while times and times[0] < horizon:
            times.popleft()
            pts.popleft()

    def latest(self) -> Optional[Point]:
        return self.points[-1] if self.points else None

    def value_at(self, t: float) -> Optional[float]:
        """Step-function read: the last sample at or before ``t``."""
        i = bisect_right(self._times, t)
        if i == 0:
            return None
        return self.points[i - 1][1]

    def increase(self, window: float, at: Optional[float] = None) -> float:
        """Counter increase over ``[at - window, at]``.

        A missing baseline reads as 0.0 (counters start at zero); a
        missing endpoint reads as the latest sample. Negative deltas
        (after a registry reset) clamp to zero.
        """
        if not self.points:
            return 0.0
        end_t = self.points[-1][0] if at is None else at
        end = self.value_at(end_t)
        if end is None:
            return 0.0
        start = self.value_at(end_t - window)
        if start is None:
            start = 0.0
        return max(0.0, end - start)

    def rate(self, window: float, at: Optional[float] = None) -> float:
        """Per-second rate of increase over the window."""
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window!r}")
        return self.increase(window, at) / window

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "field": self.field,
            "labels": dict(self.labels),
            "kind": self.kind,
            "points": [[t, v] for t, v in self.points],
        }

    def __repr__(self) -> str:
        return (f"TimeSeries({self.name}.{self.field}, {self.labels}, "
                f"{len(self.points)} pts)")


class Scraper:
    """Samples every family of a registry at a fixed sim-time interval.

    Install on a simulator with :meth:`install` (clock tap — see module
    docstring for why that keeps runs seed-for-seed identical), or drive
    manually with :meth:`scrape` from any harness. Observers registered
    via :meth:`add_observer` run after each scrape with
    ``(tick_time, scraper)`` — this is the hook the SLO engine evaluates
    from.
    """

    def __init__(self, registry: MetricsRegistry,
                 interval: float = 1e-3,
                 retention_points: int = 4096,
                 retention_seconds: Optional[float] = None,
                 histogram_sum: bool = False):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        if retention_points < 2:
            raise ValueError("retention_points must be >= 2 (increase "
                             "needs a baseline and an endpoint)")
        self.registry = registry
        self.interval = interval
        self.retention_points = retention_points
        self.retention_seconds = retention_seconds
        self.histogram_sum = histogram_sum
        self.scrapes = 0
        self.last_scrape_at: Optional[float] = None
        self._series: Dict[Tuple[str, Tuple[Tuple[str, str], ...], str],
                           TimeSeries] = {}
        # Per-family (version, [(series, stream, sum_stream)]) bindings:
        # resolving a stream costs a sorted-tuple dict key, so the scrape
        # hot loop reuses bindings until the family's series set changes.
        self._bound: Dict[str, Tuple[int, list]] = {}
        self._observers: List[Callable[[float, "Scraper"], Any]] = []
        self._sim = None
        self._tap = None

    # -- collection ----------------------------------------------------------

    def _stream(self, name: str, labels: Dict[str, str], field: str,
                kind: str) -> TimeSeries:
        key = (name, tuple(sorted(labels.items())), field)
        ts = self._series.get(key)
        if ts is None:
            ts = TimeSeries(name, field, labels, kind,
                            maxlen=self.retention_points)
            self._series[key] = ts
        return ts

    def _bind(self, name: str, family) -> list:
        bound = []
        if family.kind == "histogram":
            for s in family.series():
                sum_ts = self._stream(name, s.labels, "sum", "histogram") \
                    if self.histogram_sum else None
                bound.append((s, self._stream(name, s.labels, "count",
                                              "histogram"), sum_ts))
        else:
            for s in family.series():
                bound.append((s, self._stream(name, s.labels, "value",
                                              family.kind), None))
        return bound

    def scrape(self, t: float) -> None:
        """Sample every series of every family at sim-time ``t``."""
        self.scrapes += 1
        self.last_scrape_at = t
        for name in self.registry.families():
            family = self.registry.family(name)
            cached = self._bound.get(name)
            if cached is None or cached[0] != family.version:
                cached = (family.version, self._bind(name, family))
                self._bound[name] = cached
            if family.kind == "histogram":
                for s, count_ts, sum_ts in cached[1]:
                    count_ts.append(t, float(s.count))
                    if sum_ts is not None:
                        sum_ts.append(t, s.sum)
            else:
                for s, value_ts, _ in cached[1]:
                    value_ts.append(t, s.value)
        if self.retention_seconds is not None:
            horizon = t - self.retention_seconds
            for ts in self._series.values():
                ts.evict_before(horizon)
        for observer in self._observers:
            observer(t, self)

    def add_observer(self, fn: Callable[[float, "Scraper"], Any]) -> None:
        self._observers.append(fn)

    # -- simulator wiring ----------------------------------------------------

    def install(self, sim, first_at: Optional[float] = None) -> None:
        """Attach to a simulator via a clock tap (idempotent per sim)."""
        if self._tap is not None:
            raise RuntimeError("scraper already installed")
        self._sim = sim
        self._tap = sim.add_tap(self.interval, self.scrape,
                                first_at=first_at)

    def uninstall(self) -> None:
        if self._tap is not None:
            self._sim.remove_tap(self._tap)
            self._tap = None
            self._sim = None

    # -- readbacks -----------------------------------------------------------

    def series(self, name: Optional[str] = None, field: Optional[str] = None,
               **labels: Any) -> List[TimeSeries]:
        """All series matching the name/field/label-subset filter."""
        want = {str(k): str(v) for k, v in labels.items()}
        out = []
        for ts in self._series.values():
            if name is not None and ts.name != name:
                continue
            if field is not None and ts.field != field:
                continue
            if any(ts.labels.get(k) != v for k, v in want.items()):
                continue
            out.append(ts)
        return out

    def increase(self, name: str, window: float, at: Optional[float] = None,
                 field: str = "value", **labels: Any) -> float:
        """Summed counter increase across all matching series."""
        return sum(ts.increase(window, at)
                   for ts in self.series(name, field, **labels))

    def rate(self, name: str, window: float, at: Optional[float] = None,
             field: str = "value", **labels: Any) -> float:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window!r}")
        return self.increase(name, window, at, field, **labels) / window

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able export: the ``timeseries.json`` surface."""
        return {
            "interval": self.interval,
            "scrapes": self.scrapes,
            "last_scrape_at": self.last_scrape_at,
            "series": [ts.to_dict() for ts in self._series.values()],
        }
