"""A process-wide metrics registry: counters, gauges, histograms.

Modeled on production monitoring systems (Monarch/Prometheus shape): a
:class:`MetricsRegistry` holds named *families*, each family holds
labeled *series*, and a point-in-time :meth:`MetricsRegistry.snapshot`
is what dashboards, benchmarks, and the ``repro.tools metrics`` CLI
consume. The paper's figures are all reads of exactly this kind of
surface — latency percentiles, op counts, CPU per op — collected from
production monitoring.

Histograms retain raw samples (laptop-scale corpora make this cheap) so
their percentiles agree *exactly* with :func:`repro.sim.percentile` and
the ``analysis.stats`` recorders they replace.

Label cardinality is capped per family: once ``max_series`` distinct
label combinations exist, further combinations collapse into a single
overflow series (labeled ``overflow="true"``) instead of growing without
bound — the standard production defense against label explosions.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..sim import percentile

LabelKey = Tuple[Tuple[str, str], ...]

OVERFLOW_LABEL = "overflow"


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]):
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]):
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> Dict[str, Any]:
        return {"labels": dict(self.labels), "value": self.value}


class Histogram:
    """Distribution of observed values; retains raw samples.

    ``percentile`` uses the same nearest-rank definition as
    :func:`repro.sim.percentile`, so registry histograms and the
    ``analysis.stats`` recorders report identical numbers for identical
    samples. Empty histograms report ``nan`` rather than raising.
    """

    kind = "histogram"
    __slots__ = ("labels", "_samples", "_sorted")

    def __init__(self, labels: Dict[str, str]):
        self.labels = labels
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def sum(self) -> float:
        return math.fsum(self._samples)

    @property
    def values(self) -> Tuple[float, ...]:
        """All samples in observation order (for delta-based readers)."""
        return tuple(self._samples)

    def percentile(self, p: float, start: int = 0) -> float:
        """Nearest-rank percentile; ``start`` skips earlier samples so
        callers can measure deltas between checkpoints. ``nan`` if the
        window is empty."""
        if start:
            window = sorted(self._samples[start:])
        else:
            if self._sorted is None:
                self._sorted = sorted(self._samples)
            window = self._sorted
        if not window:
            return math.nan
        return percentile(window, p)

    def mean(self) -> float:
        if not self._samples:
            return math.nan
        return math.fsum(self._samples) / len(self._samples)

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = None

    def snapshot(self) -> Dict[str, Any]:
        out = {"labels": dict(self.labels), "count": self.count,
               "sum": self.sum, "mean": self.mean()}
        for p in (50.0, 90.0, 99.0, 99.9):
            out[f"p{p:g}"] = self.percentile(p)
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All series of one named metric (one kind, many label combos)."""

    def __init__(self, name: str, kind: str, help: str = "",
                 max_series: int = 256):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.max_series = max_series
        self._series: Dict[LabelKey, Any] = {}
        # Label combinations collapsed into the overflow series.
        self.dropped_series = 0

    def labels(self, **labels: Any):
        """The series for one label combination (created on first use).

        Beyond ``max_series`` distinct combinations, new combinations
        share a single overflow series instead of growing the family.
        """
        key = _label_key(labels)
        series = self._series.get(key)
        if series is not None:
            return series
        if len(self._series) >= self.max_series:
            self.dropped_series += 1
            return self._overflow_series()
        series = _KINDS[self.kind]({str(k): str(v)
                                    for k, v in sorted(labels.items())})
        self._series[key] = series
        return series

    def _overflow_series(self):
        key = _label_key({OVERFLOW_LABEL: "true"})
        series = self._series.get(key)
        if series is None:
            series = _KINDS[self.kind]({OVERFLOW_LABEL: "true"})
            self._series[key] = series
        return series

    def remove(self, **labels: Any) -> bool:
        """Deregister one series; True if it existed."""
        return self._series.pop(_label_key(labels), None) is not None

    @property
    def series_count(self) -> int:
        return len(self._series)

    def series(self) -> List[Any]:
        return list(self._series.values())

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help,
                "series": [s.snapshot() for s in self._series.values()]}


class MetricsRegistry:
    """Named metric families plus snapshot/aggregation readbacks.

    One registry normally spans one :class:`~repro.core.cell.Cell` (its
    clients and backends all record here); a module-level default exists
    for ad-hoc use. Families are created on first use and are kind-checked
    on re-registration.
    """

    def __init__(self, max_series_per_metric: int = 256):
        self.max_series_per_metric = max_series_per_metric
        self._families: Dict[str, MetricFamily] = {}

    # -- registration --------------------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help,
                                  max_series=self.max_series_per_metric)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}")
        return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "histogram", help)

    def unregister(self, name: str) -> bool:
        """Drop a whole family; True if it existed."""
        return self._families.pop(name, None) is not None

    def family(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[str]:
        return sorted(self._families)

    # -- readbacks -----------------------------------------------------------

    def _matching(self, name: str, labels: Dict[str, Any]) -> Iterable[Any]:
        family = self._families.get(name)
        if family is None:
            return []
        want = {str(k): str(v) for k, v in labels.items()}
        return [s for s in family.series()
                if all(s.labels.get(k) == v for k, v in want.items())]

    def value(self, name: str, **labels: Any) -> float:
        """Exact-series value (counters/gauges); ``nan`` if absent."""
        family = self._families.get(name)
        if family is None:
            return math.nan
        series = family._series.get(_label_key(labels))
        return series.value if series is not None else math.nan

    def total(self, name: str, **labels: Any) -> float:
        """Sum of counter/gauge values over series matching the label
        subset (histograms contribute their observation count)."""
        total = 0.0
        for series in self._matching(name, labels):
            total += series.count if series.kind == "histogram" \
                else series.value
        return total

    def histogram_series(self, name: str, **labels: Any) -> List[Histogram]:
        """All histogram series matching the label subset."""
        return [s for s in self._matching(name, labels)
                if s.kind == "histogram"]

    def merged_samples(self, name: str, **labels: Any) -> List[float]:
        """Concatenated raw samples across matching histogram series."""
        out: List[float] = []
        for series in self.histogram_series(name, **labels):
            out.extend(series.values)
        return out

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Point-in-time view of every family: the export surface."""
        return {name: family.snapshot()
                for name, family in sorted(self._families.items())}


_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The module-level registry (for ad-hoc/standalone instrumentation)."""
    return _default_registry
