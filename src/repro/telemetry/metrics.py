"""A process-wide metrics registry: counters, gauges, histograms.

Modeled on production monitoring systems (Monarch/Prometheus shape): a
:class:`MetricsRegistry` holds named *families*, each family holds
labeled *series*, and a point-in-time :meth:`MetricsRegistry.snapshot`
is what dashboards, benchmarks, and the ``repro.tools metrics`` CLI
consume. The paper's figures are all reads of exactly this kind of
surface — latency percentiles, op counts, CPU per op — collected from
production monitoring.

Histograms retain raw samples so their percentiles agree *exactly* with
:func:`repro.sim.percentile` and the ``analysis.stats`` recorders they
replace — up to a configurable per-series cap
(:data:`DEFAULT_HISTOGRAM_SAMPLE_CAP`). Beyond the cap the series keeps
a uniform reservoir (Algorithm R, seeded deterministically from the
family name and labels so identical runs keep identical reservoirs):
``count`` and ``sum`` stay exact forever, while percentiles become an
unbiased approximation over the reservoir. This bounds a 200-host
scrape-amplified run to ``cap`` floats per series instead of one float
per observation.

Label cardinality is capped per family: once ``max_series`` distinct
label combinations exist, further combinations collapse into a single
overflow series (labeled ``overflow="true"``) instead of growing without
bound — the standard production defense against label explosions.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..sim import percentile

LabelKey = Tuple[Tuple[str, str], ...]

OVERFLOW_LABEL = "overflow"

# Per-series raw-sample retention cap. Large enough that every
# percentile read in the repo's tests and figure benchmarks stays exact
# (their busiest series observe a few tens of thousands of samples),
# small enough to bound a scrape-amplified 200-host soak.
DEFAULT_HISTOGRAM_SAMPLE_CAP = 65536

# Exemplars retained per histogram series (most recent wins; a tiny,
# lazily allocated ring — zero cost for series that never see one).
HISTOGRAM_EXEMPLAR_CAP = 4


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]):
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]):
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> Dict[str, Any]:
        return {"labels": dict(self.labels), "value": self.value}


class Histogram:
    """Distribution of observed values; retains raw samples up to a cap.

    ``percentile`` uses the same nearest-rank definition as
    :func:`repro.sim.percentile`, so registry histograms and the
    ``analysis.stats`` recorders report identical numbers for identical
    samples. Empty histograms report ``nan`` rather than raising.

    Memory is bounded by ``max_samples``: below the cap every sample is
    retained and percentiles are exact; above it the series keeps a
    uniform reservoir (Algorithm R) — ``count`` and ``sum`` stay exact,
    percentiles are an approximation over the reservoir, and
    delta-based reads (``values`` / ``percentile(start=...)``) are only
    meaningful while the series is below the cap (``saturated`` tells
    you which regime you are in). The reservoir's RNG is seeded
    deterministically (from the family name + labels when created via
    :class:`MetricFamily`), so identical runs keep identical reservoirs.
    """

    kind = "histogram"
    __slots__ = ("labels", "max_samples", "_samples", "_sorted", "_count",
                 "_overflow_sum", "_seed", "_rand", "_exemplars")

    def __init__(self, labels: Dict[str, str],
                 max_samples: int = DEFAULT_HISTOGRAM_SAMPLE_CAP,
                 seed: int = 0):
        if max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {max_samples!r}")
        self.labels = labels
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._count = 0
        self._overflow_sum: Optional[float] = None
        self._seed = seed
        self._rand: Optional[random.Random] = None
        # Lazily allocated: [(value, trace_id, timestamp), ...] — the
        # Prometheus-exemplar surface linking tail samples to traces.
        self._exemplars: Optional[List[Tuple[float, str, float]]] = None

    def observe(self, value: float) -> None:
        count = self._count = self._count + 1
        if count <= self.max_samples:
            # Fast path: exact retention (the overwhelmingly common case).
            self._samples.append(value)
            self._sorted = None
            return
        if self._rand is None:
            # Saturating now: freeze the exact running sum and switch the
            # sample list over to reservoir maintenance.
            self._overflow_sum = math.fsum(self._samples)
            self._rand = random.Random(self._seed)
        self._overflow_sum += value
        slot = self._rand.randrange(count)
        if slot < self.max_samples:
            self._samples[slot] = value
            self._sorted = None

    def exemplar(self, value: float, trace_id: str,
                 timestamp: float) -> None:
        """Attach a trace exemplar to this series (bounded, newest kept).

        Exemplars ride alongside the distribution — they never enter
        ``count``/``sum``/percentiles or :meth:`snapshot`, so attaching
        them cannot perturb any digest or equivalence check.
        """
        if self._exemplars is None:
            self._exemplars = []
        self._exemplars.append((float(value), trace_id, float(timestamp)))
        if len(self._exemplars) > HISTOGRAM_EXEMPLAR_CAP:
            del self._exemplars[:len(self._exemplars) -
                                HISTOGRAM_EXEMPLAR_CAP]

    @property
    def exemplars(self) -> Tuple[Tuple[float, str, float], ...]:
        return tuple(self._exemplars) if self._exemplars else ()

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        if self._overflow_sum is not None:
            return self._overflow_sum
        return math.fsum(self._samples)

    @property
    def saturated(self) -> bool:
        """True once observations exceeded the cap (reservoir regime)."""
        return self._count > len(self._samples)

    @property
    def values(self) -> Tuple[float, ...]:
        """Retained samples in observation order (for delta-based
        readers); the full sample set only while not :attr:`saturated`."""
        return tuple(self._samples)

    def percentile(self, p: float, start: int = 0) -> float:
        """Nearest-rank percentile; ``start`` skips earlier samples so
        callers can measure deltas between checkpoints (exact only while
        the series is not :attr:`saturated`). ``nan`` if the window is
        empty."""
        if start:
            window = sorted(self._samples[start:])
        else:
            if self._sorted is None:
                self._sorted = sorted(self._samples)
            window = self._sorted
        if not window:
            return math.nan
        return percentile(window, p)

    def mean(self) -> float:
        if not self._count:
            return math.nan
        return self.sum / self._count

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = None
        self._count = 0
        self._overflow_sum = None
        self._rand = None
        self._exemplars = None

    def snapshot(self) -> Dict[str, Any]:
        out = {"labels": dict(self.labels), "count": self.count,
               "sum": self.sum, "mean": self.mean()}
        for p in (50.0, 90.0, 99.0, 99.9):
            out[f"p{p:g}"] = self.percentile(p)
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All series of one named metric (one kind, many label combos)."""

    def __init__(self, name: str, kind: str, help: str = "",
                 max_series: int = 256,
                 sample_cap: int = DEFAULT_HISTOGRAM_SAMPLE_CAP):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.max_series = max_series
        # Histogram families only: per-series raw-sample retention cap.
        self.sample_cap = sample_cap
        self._series: Dict[LabelKey, Any] = {}
        # Label combinations collapsed into the overflow series.
        self.dropped_series = 0
        # Bumped whenever the series set changes; lets scrapers cache
        # per-series bindings with an O(1) staleness check.
        self.version = 0

    def _new_series(self, key: LabelKey, labels: Dict[str, str]):
        if self.kind == "histogram":
            # Deterministic per-series reservoir seed: stable across runs
            # and processes (crc32, not hash()), distinct across series.
            seed = zlib.crc32(repr((self.name, key)).encode())
            return Histogram(labels, max_samples=self.sample_cap, seed=seed)
        return _KINDS[self.kind](labels)

    def labels(self, **labels: Any):
        """The series for one label combination (created on first use).

        Beyond ``max_series`` distinct combinations, new combinations
        share a single overflow series instead of growing the family.
        """
        key = _label_key(labels)
        series = self._series.get(key)
        if series is not None:
            return series
        if len(self._series) >= self.max_series:
            self.dropped_series += 1
            return self._overflow_series()
        series = self._new_series(key, {str(k): str(v)
                                        for k, v in sorted(labels.items())})
        self._series[key] = series
        self.version += 1
        return series

    def _overflow_series(self):
        key = _label_key({OVERFLOW_LABEL: "true"})
        series = self._series.get(key)
        if series is None:
            series = self._new_series(key, {OVERFLOW_LABEL: "true"})
            self._series[key] = series
            self.version += 1
        return series

    def remove(self, **labels: Any) -> bool:
        """Deregister one series; True if it existed."""
        if self._series.pop(_label_key(labels), None) is None:
            return False
        self.version += 1
        return True

    @property
    def series_count(self) -> int:
        return len(self._series)

    def series(self) -> List[Any]:
        return list(self._series.values())

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "help": self.help,
                "series": [s.snapshot() for s in self._series.values()]}


class MetricsRegistry:
    """Named metric families plus snapshot/aggregation readbacks.

    One registry normally spans one :class:`~repro.core.cell.Cell` (its
    clients and backends all record here); a module-level default exists
    for ad-hoc use. Families are created on first use and are kind-checked
    on re-registration.
    """

    def __init__(self, max_series_per_metric: int = 256,
                 histogram_sample_cap: int = DEFAULT_HISTOGRAM_SAMPLE_CAP):
        self.max_series_per_metric = max_series_per_metric
        self.histogram_sample_cap = histogram_sample_cap
        self._families: Dict[str, MetricFamily] = {}

    # -- registration --------------------------------------------------------

    def _family(self, name: str, kind: str, help: str,
                sample_cap: Optional[int] = None) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(
                name, kind, help, max_series=self.max_series_per_metric,
                sample_cap=sample_cap if sample_cap is not None
                else self.histogram_sample_cap)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}")
        return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "",
                  sample_cap: Optional[int] = None) -> MetricFamily:
        return self._family(name, "histogram", help, sample_cap=sample_cap)

    def unregister(self, name: str) -> bool:
        """Drop a whole family; True if it existed."""
        return self._families.pop(name, None) is not None

    def family(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[str]:
        return sorted(self._families)

    # -- readbacks -----------------------------------------------------------

    def _matching(self, name: str, labels: Dict[str, Any]) -> Iterable[Any]:
        family = self._families.get(name)
        if family is None:
            return []
        want = {str(k): str(v) for k, v in labels.items()}
        return [s for s in family.series()
                if all(s.labels.get(k) == v for k, v in want.items())]

    def value(self, name: str, **labels: Any) -> float:
        """Exact-series value (counters/gauges); ``nan`` if absent."""
        family = self._families.get(name)
        if family is None:
            return math.nan
        series = family._series.get(_label_key(labels))
        return series.value if series is not None else math.nan

    def total(self, name: str, **labels: Any) -> float:
        """Sum of counter/gauge values over series matching the label
        subset (histograms contribute their observation count)."""
        total = 0.0
        for series in self._matching(name, labels):
            total += series.count if series.kind == "histogram" \
                else series.value
        return total

    def histogram_series(self, name: str, **labels: Any) -> List[Histogram]:
        """All histogram series matching the label subset."""
        return [s for s in self._matching(name, labels)
                if s.kind == "histogram"]

    def merged_samples(self, name: str, **labels: Any) -> List[float]:
        """Concatenated raw samples across matching histogram series."""
        out: List[float] = []
        for series in self.histogram_series(name, **labels):
            out.extend(series.values)
        return out

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Point-in-time view of every family: the export surface."""
        return {name: family.snapshot()
                for name, family in sorted(self._families.items())}


_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The module-level registry (for ad-hoc/standalone instrumentation)."""
    return _default_registry
