"""Span-based tracing over simulated time.

The paper's evaluation decomposes every operation into its constituent
costs — index fetch, data fetch, validation, quorum, retries — and plots
where the time and CPU went (Figs 7–20). This module provides the
substrate for that decomposition: a :class:`Span` tree records intervals
of *simulated* time, and a :class:`TraceContext` is threaded from
``CliqueMapClient`` through the transport, the fabric, the RPC framework
and into the backend, so a finished operation carries a complete
client → transport → fabric → backend breakdown in its result.

Since PR 10 the same types also carry *distributed* traces: every span
has a ``trace_id`` / ``span_id`` pair drawn from deterministic,
seed-derived streams, roots can reference a parent span in another zone
(``remote_parent``), and the post-run stitcher in
:mod:`repro.analysis.stitch` merges per-zone span trees back into one
cross-zone trace.

Design notes:

* Spans read the clock through a callable (normally ``lambda: sim.now``),
  so the same types work against wall-clock time in other harnesses.
* Tracing composes with untraced call sites: every ``trace=`` parameter
  in the stack defaults to ``None``, and :data:`NULL_SPAN` is a sink
  whose children are itself — so instrumented code never branches on
  "is tracing on?".
* The client's top-level *phase* spans (``index`` / ``data`` /
  ``validate`` on the GET path) are contiguous by construction: each
  starts at the simulated instant the previous one finished, so their
  durations sum exactly to the operation latency.
* Speculative work (e.g. the first-responder data fetch that 2xR GETs
  launch before the quorum settles) starts under the phase that
  *initiated* it. A phase may close while such a leg is still in
  flight (the quorum breaks the wait loop); closing a span **hoists**
  its still-open children to the nearest open ancestor (labelled
  ``hoisted_from=<phase>``) instead of freezing an interval that
  pretends to contain work it does not. Late ``child()`` calls against
  an already-closed span attach to the nearest open ancestor the same
  way (``late_child_of=<phase>``). A closing root with no open
  ancestor clips its open descendants to its own end time, so a
  recorded tree is always fully finished and self-contained.
* Trace ids come from a tracer-private :class:`~repro.sim.RandomStream`
  child (seeded from the cell seed + tracer namespace), and span ids
  from a tracer-private monotonic allocator — neither consumes shared
  RNG state, so tracing on/off never perturbs a seeded run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..sim.rand import RandomStream

# A cross-zone span reference: (trace_id, origin_zone, span_id). This is
# what travels inside a WAN message — plain picklable primitives.
SpanRef = Tuple[str, str, int]


class _IdAllocator:
    """Monotonic span-id source, shared by reference across one tree."""

    __slots__ = ("_next",)

    def __init__(self, start: int = 1):
        self._next = start

    def __call__(self) -> int:
        span_id = self._next
        self._next += 1
        return span_id


class Span:
    """One named interval of simulated time, with labels and children."""

    __slots__ = ("name", "labels", "start", "end", "children", "_clock",
                 "parent", "trace_id", "span_id", "remote_parent", "_ids")

    def __init__(self, name: str, clock: Callable[[], float],
                 labels: Optional[Dict[str, Any]] = None,
                 start: Optional[float] = None,
                 parent: Optional["Span"] = None,
                 trace_id: Optional[str] = None,
                 span_id: Optional[int] = None,
                 remote_parent: Optional[SpanRef] = None,
                 ids: Optional[_IdAllocator] = None):
        self.name = name
        self._clock = clock
        self.labels: Dict[str, Any] = dict(labels) if labels else {}
        self.start = clock() if start is None else start
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.parent = parent
        self._ids = ids if ids is not None else (
            parent._ids if parent is not None else _IdAllocator())
        self.span_id = span_id if span_id is not None else self._ids()
        self.trace_id = trace_id if trace_id is not None else (
            parent.trace_id if parent is not None else None)
        self.remote_parent = remote_parent

    # -- lifecycle -----------------------------------------------------------

    def _open_ancestor(self) -> Optional["Span"]:
        anc = self.parent
        while anc is not None and anc.end is not None:
            anc = anc.parent
        return anc

    def child(self, name: str, **labels: Any) -> "Span":
        """Open a child span starting now.

        Called against an already-finished span (a leg that outlived its
        phase), the child attaches to the nearest still-open ancestor
        instead, labelled ``late_child_of=<this span>`` — closing a
        phase never silently orphans work that races past it.
        """
        target = self
        if self.end is not None:
            anc = self._open_ancestor()
            if anc is not None:
                span = Span(name, anc._clock, labels, parent=anc)
                span.labels.setdefault("late_child_of", self.name)
                anc.children.append(span)
                return span
        span = Span(name, target._clock, labels, parent=target)
        target.children.append(span)
        return span

    def adopt(self, span: "Span") -> "Span":
        """Attach an already-created span as a child (speculative work)."""
        span.parent = self
        if span.trace_id is None:
            span.trace_id = self.trace_id
        self.children.append(span)
        return span

    def finish(self, at: Optional[float] = None) -> "Span":
        """Close the span (idempotent: the first finish wins).

        Reparent-on-close: any child still open at this instant is
        hoisted to the nearest open ancestor (labelled
        ``hoisted_from``), so this span's recorded interval truthfully
        contains only the work that finished inside it. With no open
        ancestor (a root closing), open descendants are clipped to this
        span's end instead (labelled ``clipped_by``) so a recorded tree
        is always fully finished.
        """
        if self.end is None:
            self.end = self._clock() if at is None else at
            open_children = [c for c in self.children if c.end is None]
            if open_children:
                anc = self._open_ancestor()
                for child in open_children:
                    if anc is not None:
                        self.children.remove(child)
                        child.parent = anc
                        child.labels.setdefault("hoisted_from", self.name)
                        anc.children.append(child)
                    else:
                        child.labels.setdefault("clipped_by", self.name)
                        child.finish(self.end)
        return self

    def annotate(self, **labels: Any) -> "Span":
        self.labels.update(labels)
        return self

    # -- readbacks -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed simulated seconds (up to now for an unfinished span)."""
        end = self.end if self.end is not None else self._clock()
        return end - self.start

    def ref(self, zone: str = "") -> SpanRef:
        """This span's cross-zone reference (what goes on the wire)."""
        return (self.trace_id or "", zone, self.span_id)

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Depth-first (depth, span) traversal including this span."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in depth-first order (or None)."""
        for _depth, span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [s for _d, s in self.walk() if s.name == name]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "labels": dict(self.labels),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": (self.parent.span_id
                               if self.parent is not None else None),
            "children": [c.to_dict() for c in self.children],
        }
        if self.remote_parent is not None:
            out["remote_parent"] = list(self.remote_parent)
        return out

    def render(self) -> str:
        """Indented plain-text tree with per-span durations in us."""
        lines = []
        for depth, span in self.walk():
            labels = "".join(f" {k}={v}" for k, v in sorted(
                span.labels.items()))
            open_mark = "" if span.finished else " (open)"
            lines.append(f"{'  ' * depth}{span.name:<{max(1, 24 - 2 * depth)}}"
                         f" {span.duration * 1e6:9.2f}us{open_mark}{labels}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, duration={self.duration:.3e}, "
                f"children={len(self.children)})")


class _NullSpan:
    """A no-op span: the sink used when tracing is disabled.

    Its children are itself, so instrumented code can unconditionally
    ``span.child(...)`` / ``span.finish()`` without branching.
    """

    __slots__ = ()

    name = "null"
    labels: Dict[str, Any] = {}
    start = 0.0
    end = 0.0
    children: List[Span] = []
    finished = True
    duration = 0.0
    parent = None
    trace_id = None
    span_id = 0
    remote_parent = None

    def child(self, name: str, **labels: Any) -> "_NullSpan":
        return self

    def adopt(self, span):
        return span

    def finish(self, at: Optional[float] = None) -> "_NullSpan":
        return self

    def annotate(self, **labels: Any) -> "_NullSpan":
        return self

    def ref(self, zone: str = "") -> None:
        return None

    def walk(self, depth: int = 0):
        return iter(())

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> List[Span]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def render(self) -> str:
        return "(tracing disabled)"

    def __bool__(self) -> bool:
        # Falsy, so ``trace or NULL_SPAN`` idioms and "did we trace?"
        # checks both behave.
        return False

    def __repr__(self) -> str:
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class TraceContext:
    """The tracing state threaded through one operation.

    Thin by design: it carries the operation's root span plus the clock,
    and is what public APIs accept as their ``trace=`` argument. Most
    instrumented layers only ever see a :class:`Span`; the context exists
    so callers can pass "trace this op into here" as one object.
    """

    __slots__ = ("root",)

    def __init__(self, root: Span):
        self.root = root

    @property
    def trace_id(self) -> Optional[str]:
        return self.root.trace_id

    def child(self, name: str, **labels: Any) -> Span:
        return self.root.child(name, **labels)

    def ref(self, zone: str = "") -> Optional[SpanRef]:
        return self.root.ref(zone)

    def finish(self, at: Optional[float] = None) -> Span:
        return self.root.finish(at)

    def render(self) -> str:
        return self.root.render()


# Statuses that mark an operation trace as an error for tail sampling.
ERROR_STATUSES = frozenset({"error", "failed", "timeout", "inquorate",
                            "unavailable"})


class Tracer:
    """Creates root spans and retains a bounded history of finished ops.

    ``seed``/``namespace`` derive the deterministic trace-id stream: the
    same (seed, namespace) always yields the same id sequence, and
    distinct namespaces (one per zone cell) yield disjoint sequences, so
    cross-zone traces stitch without collisions and a traced run stays
    bit-identical to an untraced one (the stream is tracer-private —
    no shared RNG state is consumed).

    Tail sampling (``tail_sample_every``): when set, :meth:`record`
    keeps full span trees only for error ops, slow ops (duration >=
    ``tail_slow_threshold``, when given), and a deterministic 1-in-N of
    the rest; everything else is counted in ``sampled_out`` and
    dropped. Left at ``None`` (the default) every finished root is
    retained, bounded by ``max_retained``.
    """

    def __init__(self, clock: Callable[[], float], enabled: bool = True,
                 max_retained: int = 64, seed: Optional[int] = None,
                 namespace: str = "",
                 tail_sample_every: Optional[int] = None,
                 tail_slow_threshold: Optional[float] = None):
        self.clock = clock
        self.enabled = enabled
        self.max_retained = max_retained
        self.namespace = namespace
        self.tail_sample_every = tail_sample_every
        self.tail_slow_threshold = tail_slow_threshold
        self.finished: List[Span] = []
        self.started = 0
        self.sampled_out = 0
        self._ids = _IdAllocator()
        self._trace_rand = RandomStream(
            seed if seed is not None else 0,
            f"tracer/{namespace or 'default'}")

    def _next_trace_id(self) -> str:
        return f"{self._trace_rand.randint(1, (1 << 64) - 1):016x}"

    def start(self, name: str, parent: Optional[Span] = None,
              remote_parent: Optional[SpanRef] = None, **labels: Any):
        """Open a root span (or :data:`NULL_SPAN` when disabled).

        ``parent`` (a local :class:`Span` or falsy) makes the new span a
        child of an enclosing operation instead of a standalone root.
        ``remote_parent`` is a :data:`SpanRef` from another zone: the
        new root joins that trace (same ``trace_id``) and records the
        reference for the post-run stitcher.
        """
        if not self.enabled:
            return NULL_SPAN
        self.started += 1
        if parent:
            span = parent.child(name, **labels)
            return span
        trace_id = (remote_parent[0] if remote_parent else
                    self._next_trace_id())
        return Span(name, self.clock, labels, ids=self._ids,
                    trace_id=trace_id, remote_parent=remote_parent)

    def record(self, span) -> None:
        """Retain a finished root span (bounded, oldest dropped)."""
        if span is NULL_SPAN or span is None:
            return
        if self.tail_sample_every is not None and not self._tail_keep(span):
            self.sampled_out += 1
            return
        self.finished.append(span)
        if len(self.finished) > self.max_retained:
            del self.finished[:len(self.finished) - self.max_retained]

    def _tail_keep(self, span: Span) -> bool:
        status = span.labels.get("status")
        if status in ERROR_STATUSES or span.labels.get("error"):
            return True
        if (self.tail_slow_threshold is not None and
                span.finished and span.duration >= self.tail_slow_threshold):
            return True
        # Deterministic 1-in-N on the kept-or-dropped decision sequence.
        return (self.started % self.tail_sample_every) == 0

    def last(self) -> Optional[Span]:
        return self.finished[-1] if self.finished else None
