"""Span-based tracing over simulated time.

The paper's evaluation decomposes every operation into its constituent
costs — index fetch, data fetch, validation, quorum, retries — and plots
where the time and CPU went (Figs 7–20). This module provides the
substrate for that decomposition: a :class:`Span` tree records intervals
of *simulated* time, and a :class:`TraceContext` is threaded from
``CliqueMapClient`` through the transport, the fabric, the RPC framework
and into the backend, so a finished operation carries a complete
client → transport → fabric → backend breakdown in its result.

Design notes:

* Spans read the clock through a callable (normally ``lambda: sim.now``),
  so the same types work against wall-clock time in other harnesses.
* Tracing composes with untraced call sites: every ``trace=`` parameter
  in the stack defaults to ``None``, and :data:`NULL_SPAN` is a sink
  whose children are itself — so instrumented code never branches on
  "is tracing on?".
* The client's top-level *phase* spans (``index`` / ``data`` /
  ``validate`` on the GET path) are contiguous by construction: each
  starts at the simulated instant the previous one finished, so their
  durations sum exactly to the operation latency.
* Speculative work (e.g. the first-responder data fetch that 2xR GETs
  launch before the quorum settles) is recorded under the phase that
  *initiated* it, so a speculative child may begin before the phase it
  logically belongs to — that is the speculation, made visible.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class Span:
    """One named interval of simulated time, with labels and children."""

    __slots__ = ("name", "labels", "start", "end", "children", "_clock")

    def __init__(self, name: str, clock: Callable[[], float],
                 labels: Optional[Dict[str, Any]] = None,
                 start: Optional[float] = None):
        self.name = name
        self._clock = clock
        self.labels: Dict[str, Any] = dict(labels) if labels else {}
        self.start = clock() if start is None else start
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    # -- lifecycle -----------------------------------------------------------

    def child(self, name: str, **labels: Any) -> "Span":
        """Open a child span starting now."""
        span = Span(name, self._clock, labels)
        self.children.append(span)
        return span

    def adopt(self, span: "Span") -> "Span":
        """Attach an already-created span as a child (speculative work)."""
        self.children.append(span)
        return span

    def finish(self, at: Optional[float] = None) -> "Span":
        """Close the span (idempotent: the first finish wins)."""
        if self.end is None:
            self.end = self._clock() if at is None else at
        return self

    def annotate(self, **labels: Any) -> "Span":
        self.labels.update(labels)
        return self

    # -- readbacks -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed simulated seconds (up to now for an unfinished span)."""
        end = self.end if self.end is not None else self._clock()
        return end - self.start

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Depth-first (depth, span) traversal including this span."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in depth-first order (or None)."""
        for _depth, span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [s for _d, s in self.walk() if s.name == name]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "labels": dict(self.labels),
            "children": [c.to_dict() for c in self.children],
        }

    def render(self) -> str:
        """Indented plain-text tree with per-span durations in us."""
        lines = []
        for depth, span in self.walk():
            labels = "".join(f" {k}={v}" for k, v in sorted(
                span.labels.items()))
            open_mark = "" if span.finished else " (open)"
            lines.append(f"{'  ' * depth}{span.name:<{max(1, 24 - 2 * depth)}}"
                         f" {span.duration * 1e6:9.2f}us{open_mark}{labels}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, duration={self.duration:.3e}, "
                f"children={len(self.children)})")


class _NullSpan:
    """A no-op span: the sink used when tracing is disabled.

    Its children are itself, so instrumented code can unconditionally
    ``span.child(...)`` / ``span.finish()`` without branching.
    """

    __slots__ = ()

    name = "null"
    labels: Dict[str, Any] = {}
    start = 0.0
    end = 0.0
    children: List[Span] = []
    finished = True
    duration = 0.0

    def child(self, name: str, **labels: Any) -> "_NullSpan":
        return self

    def adopt(self, span):
        return span

    def finish(self, at: Optional[float] = None) -> "_NullSpan":
        return self

    def annotate(self, **labels: Any) -> "_NullSpan":
        return self

    def walk(self, depth: int = 0):
        return iter(())

    def find(self, name: str) -> None:
        return None

    def find_all(self, name: str) -> List[Span]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {}

    def render(self) -> str:
        return "(tracing disabled)"

    def __bool__(self) -> bool:
        # Falsy, so ``trace or NULL_SPAN`` idioms and "did we trace?"
        # checks both behave.
        return False

    def __repr__(self) -> str:
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class TraceContext:
    """The tracing state threaded through one operation.

    Thin by design: it carries the operation's root span plus the clock,
    and is what public APIs accept as their ``trace=`` argument. Most
    instrumented layers only ever see a :class:`Span`; the context exists
    so callers can pass "trace this op into here" as one object.
    """

    __slots__ = ("root",)

    def __init__(self, root: Span):
        self.root = root

    def child(self, name: str, **labels: Any) -> Span:
        return self.root.child(name, **labels)

    def finish(self, at: Optional[float] = None) -> Span:
        return self.root.finish(at)

    def render(self) -> str:
        return self.root.render()


class Tracer:
    """Creates root spans and retains a bounded history of finished ops."""

    def __init__(self, clock: Callable[[], float], enabled: bool = True,
                 max_retained: int = 64):
        self.clock = clock
        self.enabled = enabled
        self.max_retained = max_retained
        self.finished: List[Span] = []
        self.started = 0

    def start(self, name: str, **labels: Any):
        """Open a root span (or :data:`NULL_SPAN` when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        self.started += 1
        return Span(name, self.clock, labels)

    def record(self, span) -> None:
        """Retain a finished root span (bounded, oldest dropped)."""
        if span is NULL_SPAN or span is None:
            return
        self.finished.append(span)
        if len(self.finished) > self.max_retained:
            del self.finished[:len(self.finished) - self.max_retained]

    def last(self) -> Optional[Span]:
        return self.finished[-1] if self.finished else None
