"""Exporters: Chrome-trace JSON for span trees, Prometheus text for
registry snapshots.

Two interchange formats so the simulated telemetry can be inspected with
the same tooling production systems use:

* :func:`chrome_trace` renders :class:`~repro.telemetry.trace.Span`
  trees as ``chrome://tracing`` / Perfetto "trace event" JSON (complete
  ``"X"`` events, microsecond timestamps). Each root span becomes one
  "thread" so concurrent operations lay out side by side on the
  timeline.
* :func:`prometheus_text` renders a :class:`MetricsRegistry` in the
  Prometheus text exposition format (``# HELP`` / ``# TYPE`` +
  one sample line per series; histograms as summary-style quantiles
  with ``_count`` / ``_sum``). Histogram series carrying trace
  exemplars get an OpenMetrics-style exemplar suffix on their
  ``_count`` line (``... # {trace_id="..."} value timestamp``), so a
  tail-latency sample links back to the full span tree that produced
  it.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional

from .metrics import MetricsRegistry
from .trace import Span

# Simulated seconds -> trace-event microseconds.
_US = 1e6


def _span_events(span: Span, pid: int, tid: int,
                 end_fallback: float) -> Iterable[Dict[str, Any]]:
    for _depth, s in span.walk():
        end = s.end if s.end is not None else end_fallback
        yield {
            "name": s.name,
            "ph": "X",
            "ts": s.start * _US,
            "dur": max(0.0, (end - s.start) * _US),
            "pid": pid,
            "tid": tid,
            "args": {str(k): str(v) for k, v in sorted(s.labels.items())},
        }


def chrome_trace(spans: Iterable[Span], process_name: str = "cliquemap",
                 pid: int = 1) -> Dict[str, Any]:
    """Trace-event JSON for a collection of root spans.

    Each root span gets its own ``tid`` so overlapping operations render
    as parallel tracks; nesting within a track comes from the viewer's
    containment of ``"X"`` intervals. Unfinished spans are clipped to
    their root's extent.
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": process_name},
    }]
    for tid, root in enumerate(spans, start=1):
        root_end = root.end if root.end is not None else root.start
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": f"op {tid}: {root.name}"},
        })
        events.extend(_span_events(root, pid, tid, root_end))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[Span],
                       process_name: str = "cliquemap") -> int:
    """Write trace-event JSON to ``path``; returns the event count."""
    doc = chrome_trace(spans, process_name=process_name)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


# -- Prometheus text exposition ----------------------------------------------


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _label_str(labels: Dict[str, str],
               extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape(str(v))}"'
                     for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (v0.0.4)."""
    lines: List[str] = []
    for name in registry.families():
        family = registry.family(name)
        ptype = "summary" if family.kind == "histogram" else family.kind
        if family.help:
            lines.append(f"# HELP {name} {_escape(family.help)}")
        lines.append(f"# TYPE {name} {ptype}")
        for series in family.series():
            if family.kind == "histogram":
                for q in (0.5, 0.9, 0.99):
                    val = series.percentile(q * 100.0)
                    lines.append(
                        f"{name}{_label_str(series.labels, {'quantile': repr(q)})}"
                        f" {_fmt(val)}")
                exemplar = ""
                exemplars = getattr(series, "exemplars", ())
                if exemplars:
                    value, trace_id, ts = exemplars[-1]
                    exemplar = (f" # {{trace_id=\"{_escape(trace_id)}\"}}"
                                f" {_fmt(value)} {_fmt(ts)}")
                lines.append(f"{name}_count{_label_str(series.labels)}"
                             f" {_fmt(series.count)}{exemplar}")
                lines.append(f"{name}_sum{_label_str(series.labels)}"
                             f" {_fmt(series.sum)}")
            else:
                lines.append(f"{name}{_label_str(series.labels)}"
                             f" {_fmt(series.value)}")
    return "\n".join(lines) + "\n"
