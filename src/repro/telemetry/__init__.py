"""End-to-end telemetry: metrics registry + span-based tracing.

The observability layer the paper's whole evaluation rests on: a
:class:`MetricsRegistry` of labeled counters/gauges/histograms, and a
:class:`Span` tracer that decomposes every CliqueMap operation into
client → transport → fabric → backend intervals of simulated time.
See :mod:`repro.telemetry.metrics` and :mod:`repro.telemetry.trace`.
"""

from .export import (chrome_trace, prometheus_text, write_chrome_trace)
from .flight import (EVENT_KINDS, NULL_FLIGHT, FlightEvent, FlightRecorder)
from .metrics import (DEFAULT_HISTOGRAM_SAMPLE_CAP, Counter, Gauge,
                      Histogram, MetricFamily, MetricsRegistry,
                      default_registry)
from .timeseries import Scraper, TimeSeries
from .trace import NULL_SPAN, Span, SpanRef, TraceContext, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricFamily", "MetricsRegistry",
    "DEFAULT_HISTOGRAM_SAMPLE_CAP", "default_registry",
    "NULL_SPAN", "Span", "SpanRef", "TraceContext", "Tracer",
    "EVENT_KINDS", "NULL_FLIGHT", "FlightEvent", "FlightRecorder",
    "Scraper", "TimeSeries",
    "chrome_trace", "prometheus_text", "write_chrome_trace",
]
