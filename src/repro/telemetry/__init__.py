"""End-to-end telemetry: metrics registry + span-based tracing.

The observability layer the paper's whole evaluation rests on: a
:class:`MetricsRegistry` of labeled counters/gauges/histograms, and a
:class:`Span` tracer that decomposes every CliqueMap operation into
client → transport → fabric → backend intervals of simulated time.
See :mod:`repro.telemetry.metrics` and :mod:`repro.telemetry.trace`.
"""

from .metrics import (Counter, Gauge, Histogram, MetricFamily,
                      MetricsRegistry, default_registry)
from .trace import NULL_SPAN, Span, TraceContext, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricFamily", "MetricsRegistry",
    "default_registry",
    "NULL_SPAN", "Span", "TraceContext", "Tracer",
]
