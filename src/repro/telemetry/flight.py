"""Flight recorder: a bounded ring buffer of structured events.

CliqueMap's RMA ops bypass the server CPU, so there is no server-side
log to read after an incident (§6 of the paper) — causality has to be
reconstructed from client-side records. The flight recorder is that
record for this reproduction: a ``deque(maxlen=N)`` of small structured
events — op completions, retry/backoff decisions, quarantine
transitions, config-generation bumps, resize phase changes, fault
injections, SLO alert fire/resolve — stamped with simulated time and a
monotone sequence number, fed from the hook points the system already
has.

The discipline matches the PR 4 null-telemetry fast path: when
recording is off, every hook site holds :data:`NULL_FLIGHT` (falsy) and
is guarded by ``if self._flight:`` — a disabled recorder allocates
nothing, appends nothing, and never perturbs a seeded run (events are
recorded synchronously; nothing yields).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

# The event kinds the standard hook points emit. Open set — queries
# accept any string — but keeping the vocabulary here keeps emitters
# and postmortem readers honest about what exists.
EVENT_KINDS = ("op", "retry", "retry_shed", "quarantine", "config",
               "resize", "fault", "alert")


class FlightEvent:
    """One recorded event: time, kind, origin, free-form fields."""

    __slots__ = ("t", "seq", "kind", "origin", "fields")

    def __init__(self, t: float, seq: int, kind: str, origin: str,
                 fields: Dict[str, Any]):
        self.t = t
        self.seq = seq
        self.kind = kind
        self.origin = origin
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        return {"t": self.t, "seq": self.seq, "kind": self.kind,
                "origin": self.origin, "fields": dict(self.fields)}

    def describe(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.t:12.6f}s #{self.seq:>6}] {self.kind:<11} " \
               f"{self.origin:<24} {fields}"

    def __repr__(self) -> str:
        return f"FlightEvent({self.kind!r}, t={self.t:.6f}, " \
               f"origin={self.origin!r})"


class FlightRecorder:
    """Bounded ring of :class:`FlightEvent` over a simulated clock."""

    def __init__(self, clock: Callable[[], float], capacity: int = 4096):
        self.clock = clock
        self.capacity = capacity
        self.recorded = 0          # total ever recorded (ring may drop)
        self._ring: Deque[FlightEvent] = deque(maxlen=capacity)

    def record(self, kind: str, origin: str = "", **fields: Any) -> None:
        """Append one event stamped with the current simulated time."""
        self.recorded += 1
        self._ring.append(FlightEvent(self.clock(), self.recorded, kind,
                                      origin, fields))

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def __bool__(self) -> bool:
        return True

    def __iter__(self) -> Iterator[FlightEvent]:
        return iter(self._ring)

    def events(self, kind: Optional[str] = None,
               origin: Optional[str] = None,
               since: Optional[float] = None,
               last: Optional[int] = None) -> List[FlightEvent]:
        """Filtered view, oldest first. ``last`` applies after filters."""
        out = [e for e in self._ring
               if (kind is None or e.kind == kind)
               and (origin is None or e.origin == origin)
               and (since is None or e.t >= since)]
        if last is not None and last < len(out):
            out = out[-last:]
        return out

    def to_dicts(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self.events(last=last)]

    def render(self, last: Optional[int] = None) -> str:
        return "\n".join(e.describe() for e in self.events(last=last))


class _NullFlightRecorder:
    """Disabled recorder: falsy, records nothing, allocates nothing."""

    __slots__ = ()

    capacity = 0
    recorded = 0

    def record(self, kind: str, origin: str = "", **fields: Any) -> None:
        return None

    def events(self, kind=None, origin=None, since=None, last=None):
        return []

    def to_dicts(self, last=None):
        return []

    def render(self, last=None) -> str:
        return "(flight recorder disabled)"

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL_FLIGHT"


NULL_FLIGHT = _NullFlightRecorder()
