"""Multi-language access: shims over a subprocess C++ client (§6.2)."""

from .pipe import NamedPipe, PipePair
from .shim import PROFILES, LanguageProfile, LanguageShim, make_shim

__all__ = ["NamedPipe", "PipePair", "PROFILES", "LanguageProfile",
           "LanguageShim", "make_shim"]
