"""Language shims: Java/Go/Python access to CliqueMap (§6.2, Fig 6).

Rather than maintaining per-language client implementations (slow to
evolve, error-prone native invocation), each shim is a lightweight
wrapper that forwards operations over named pipes to the C++ client
running as a subprocess. The tradeoff: per-op marshal CPU in the shim's
runtime plus two pipe crossings, in exchange for one client codebase.

Java additionally uses a shared-memory fast path (the paper's footnote 4),
modeled as a lower pipe latency and higher copy bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..core import CliqueMapClient, GetResult, MutationResult
from .pipe import PipePair


@dataclass(frozen=True)
class LanguageProfile:
    """Per-language shim cost constants."""

    name: str
    uses_pipes: bool
    marshal_cpu: float          # fixed per-op CPU in the shim runtime
    per_kilobyte_cpu: float     # (de)serialization per KB
    pipe_latency: float         # one-way pipe/syscall latency
    pipe_bytes_per_sec: float


# Ordered as in Figure 6: cpp fastest, python slowest. Java benefits from
# the shared-memory acceleration; Go pays full pipe costs but has a cheap
# runtime; Python's marshal costs dominate.
PROFILES: Dict[str, LanguageProfile] = {
    "cpp": LanguageProfile("cpp", uses_pipes=False, marshal_cpu=0.0,
                           per_kilobyte_cpu=0.0, pipe_latency=0.0,
                           pipe_bytes_per_sec=1.0),
    "java": LanguageProfile("java", uses_pipes=True, marshal_cpu=5e-6,
                            per_kilobyte_cpu=0.4e-6, pipe_latency=1.2e-6,
                            pipe_bytes_per_sec=6e9),
    "go": LanguageProfile("go", uses_pipes=True, marshal_cpu=8e-6,
                          per_kilobyte_cpu=0.6e-6, pipe_latency=3.5e-6,
                          pipe_bytes_per_sec=2e9),
    "py": LanguageProfile("py", uses_pipes=True, marshal_cpu=55e-6,
                          per_kilobyte_cpu=4.0e-6, pipe_latency=5e-6,
                          pipe_bytes_per_sec=0.8e9),
}

REQUEST_OVERHEAD_BYTES = 48   # op header on the pipe protocol
RESPONSE_OVERHEAD_BYTES = 48


class LanguageShim:
    """A non-C++ application's handle to CliqueMap.

    Wraps the (C++) :class:`CliqueMapClient` running in a subprocess on
    the same host; every operation pays shim marshal CPU and a pipe round
    trip, then delegates to the real client.
    """

    def __init__(self, client: CliqueMapClient, language: str):
        if language not in PROFILES:
            raise ValueError(f"unsupported shim language {language!r}; "
                             f"have {sorted(PROFILES)}")
        self.client = client
        self.sim = client.sim
        self.profile = PROFILES[language]
        self.pipes: Optional[PipePair] = None
        if self.profile.uses_pipes:
            self.pipes = PipePair(self.sim, self.profile.pipe_latency,
                                  self.profile.pipe_bytes_per_sec,
                                  name=f"shim-{language}")
        self.ops = 0

    @property
    def component(self) -> str:
        return f"shim:{self.profile.name}"

    def _shim_cpu(self, payload_bytes: int) -> Generator:
        profile = self.profile
        if profile.marshal_cpu <= 0:
            return
        yield from self.client.host.execute(
            profile.marshal_cpu +
            payload_bytes / 1024.0 * profile.per_kilobyte_cpu,
            self.component)

    def _cross(self, request_bytes: int, response_bytes: int) -> Generator:
        if self.pipes is not None:
            yield from self.pipes.round_trip(
                request_bytes + REQUEST_OVERHEAD_BYTES,
                response_bytes + RESPONSE_OVERHEAD_BYTES)

    # -- operations ---------------------------------------------------------

    def get(self, key: bytes, deadline: Optional[float] = None) -> Generator:
        """GET through the shim; returns the C++ client's GetResult."""
        yield from self._shim_cpu(len(key))
        yield from self._cross(len(key), 0)
        result: GetResult = yield from self.client.get(key, deadline)
        response_bytes = len(result.value) if result.value else 0
        yield from self._cross(0, response_bytes)
        yield from self._shim_cpu(response_bytes)
        self.ops += 1
        return result

    def set(self, key: bytes, value: bytes,
            deadline: Optional[float] = None) -> Generator:
        yield from self._shim_cpu(len(key) + len(value))
        yield from self._cross(len(key) + len(value), 0)
        result: MutationResult = yield from self.client.set(key, value,
                                                            deadline)
        yield from self._cross(0, 16)
        yield from self._shim_cpu(16)
        self.ops += 1
        return result

    def erase(self, key: bytes,
              deadline: Optional[float] = None) -> Generator:
        yield from self._shim_cpu(len(key))
        yield from self._cross(len(key), 0)
        result = yield from self.client.erase(key, deadline)
        yield from self._cross(0, 16)
        yield from self._shim_cpu(16)
        self.ops += 1
        return result


def make_shim(client: CliqueMapClient, language: str) -> LanguageShim:
    """Build a shim (or a pass-through for cpp) over a connected client."""
    return LanguageShim(client, language)
