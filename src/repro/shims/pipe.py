"""Named-pipe IPC model for language shims (§6.2).

Each non-C++ language shim launches the real C++ CliqueMap client in a
subprocess and talks to it over named pipes — a simple abstraction every
language has. A pipe transfer costs a syscall/wakeup latency plus
serialization at a copy bandwidth; concurrent messages through one pipe
serialize FIFO.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Resource, Simulator


class NamedPipe:
    """A unidirectional byte pipe between two processes on one host."""

    def __init__(self, sim: Simulator, latency: float,
                 bytes_per_sec: float, name: str = ""):
        if bytes_per_sec <= 0:
            raise ValueError("pipe bandwidth must be positive")
        self.sim = sim
        self.latency = latency
        self.bytes_per_sec = bytes_per_sec
        self.name = name
        self._server = Resource(sim, capacity=1, name=f"pipe:{name}")
        self.messages = 0
        self.bytes_carried = 0

    def transfer(self, nbytes: int) -> Generator:
        """Move one message of ``nbytes`` through the pipe."""
        request = self._server.request()
        yield request
        try:
            yield self.sim.timeout(self.latency +
                                   nbytes / self.bytes_per_sec)
            self.messages += 1
            self.bytes_carried += nbytes
        finally:
            self._server.release(request)


class PipePair:
    """Request and response pipes between a shim and its subprocess."""

    def __init__(self, sim: Simulator, latency: float, bytes_per_sec: float,
                 name: str = ""):
        self.to_subprocess = NamedPipe(sim, latency, bytes_per_sec,
                                       f"{name}.req")
        self.from_subprocess = NamedPipe(sim, latency, bytes_per_sec,
                                         f"{name}.resp")

    def round_trip(self, request_bytes: int,
                   response_bytes: int) -> Generator:
        yield from self.to_subprocess.transfer(request_bytes)
        yield from self.from_subprocess.transfer(response_bytes)
