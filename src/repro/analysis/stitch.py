"""Post-run trace stitcher: per-zone span trees → cross-zone traces.

A sharded federation (ARCHITECTURE §13) runs one private simulator and
tracer per zone, so a cross-zone GET leaves *two* span trees behind: the
origin zone's ``fed.get`` tree (whose ``wan.call`` span parks on the WAN
round trip) and the destination zone's ``wan.serve`` tree (whose root
carries a ``remote_parent`` reference — ``(trace_id, origin_zone,
span_id)`` — naming exactly that ``wan.call`` span). Both trees share
one deterministic ``trace_id``, carried over the WAN inside
:class:`~repro.sim.ShardMessage`.

This module reassembles them after the run: group per-zone span dicts
by ``trace_id``, hang every serve tree under the origin span its
``remote_parent`` names, and export the result as one Perfetto timeline
— one "process" per zone, with flow arrows (``"s"``/``"f"`` trace
events) drawn across the WAN joints. Stitching is pure dict surgery
over :meth:`~repro.telemetry.Span.to_dict` output, so it works on live
runs, worker-pickled digests, and postmortem-bundle JSON alike.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..telemetry.trace import ERROR_STATUSES

# Simulated seconds -> trace-event microseconds (matches telemetry.export).
_US = 1e6


def walk_span_dict(span: Dict[str, Any],
                   depth: int = 0) -> Iterator[Tuple[int, Dict[str, Any]]]:
    """Depth-first (depth, span-dict) traversal including ``span``."""
    yield depth, span
    for child in span.get("children", ()):
        yield from walk_span_dict(child, depth + 1)


class StitchedTrace:
    """One cross-zone trace: origin root trees with serve trees attached.

    ``roots`` are span dicts (the origin zone's standalone roots for
    this trace id); serve roots from other zones have been spliced into
    their parents' ``children``. Every span dict carries a ``zone`` key
    after stitching. ``links`` lists the WAN joints as
    ``(parent_span, serve_root)`` dict pairs for flow-arrow export.
    """

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.roots: List[Dict[str, Any]] = []
        self.links: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
        self.orphans: List[Dict[str, Any]] = []

    def walk(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        for root in self.roots:
            yield from walk_span_dict(root)
        for orphan in self.orphans:
            yield from walk_span_dict(orphan)

    @property
    def zones(self) -> List[str]:
        seen: List[str] = []
        for _d, span in self.walk():
            zone = span.get("zone")
            if zone and zone not in seen:
                seen.append(zone)
        return seen

    @property
    def cross_zone(self) -> bool:
        return len(self.zones) > 1

    @property
    def latency(self) -> float:
        """Wall extent of the whole trace in simulated seconds."""
        starts = [s["start"] for _d, s in self.walk()
                  if s.get("start") is not None]
        ends = [s["end"] for _d, s in self.walk()
                if s.get("end") is not None]
        if not starts or not ends:
            return 0.0
        return max(ends) - min(starts)

    @property
    def has_error(self) -> bool:
        for _d, span in self.walk():
            labels = span.get("labels", {})
            if labels.get("error") or \
                    str(labels.get("status")) in ERROR_STATUSES:
                return True
        return False

    def ops(self) -> List[str]:
        return [root["name"] for root in self.roots]

    def render(self) -> str:
        """Indented plain-text tree, one line per span, zone-tagged."""
        lines = [f"trace {self.trace_id}  zones={','.join(self.zones)}  "
                 f"latency={self.latency * 1e6:.2f}us"
                 + ("  ERROR" if self.has_error else "")]
        for depth, span in self.walk():
            labels = "".join(
                f" {k}={v}" for k, v in sorted(
                    span.get("labels", {}).items()))
            duration = span.get("duration") or 0.0
            lines.append(
                f"  {'  ' * depth}[{span.get('zone', '?'):>6}] "
                f"{span['name']:<{max(1, 22 - 2 * depth)}} "
                f"{duration * 1e6:9.2f}us{labels}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "zones": self.zones,
                "cross_zone": self.cross_zone, "latency": self.latency,
                "has_error": self.has_error, "roots": self.roots,
                "orphans": self.orphans}


def zone_traces_from_digests(
        digests: List[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """Pull the per-zone ``traces`` exports out of sharded run digests
    (:class:`~repro.sim.ShardRunReport` ``.digests`` entries produced
    with ``ZoneWorkloadSpec.export_traces=True``)."""
    return {d["zone"]: d.get("traces", []) for d in digests}


def stitch_traces(
        zone_traces: Dict[str, List[Dict[str, Any]]]) -> List[StitchedTrace]:
    """Merge per-zone root span dicts into cross-zone traces.

    ``zone_traces`` maps zone name → that zone's retained root span
    dicts. Roots carrying a ``remote_parent`` are spliced under the
    span that reference names; the rest become trace roots. A serve
    root whose named parent was not retained in the origin zone (tail
    sampling, ring eviction) is kept as an ``orphan`` of its trace
    rather than dropped — postmortems prefer a detached tree to a
    silent hole.
    """
    # Tag every span with its zone; index spans by (zone, span_id).
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    index: Dict[Tuple[str, int], Dict[str, Any]] = {}
    for zone, roots in zone_traces.items():
        for root in roots:
            for _depth, span in walk_span_dict(root):
                span["zone"] = zone
                if span.get("span_id") is not None:
                    index[(zone, span["span_id"])] = span
            by_trace.setdefault(root.get("trace_id") or "untraced",
                                []).append(root)

    stitched: List[StitchedTrace] = []
    for trace_id in sorted(by_trace):
        trace = StitchedTrace(trace_id)
        for root in by_trace[trace_id]:
            ref = root.get("remote_parent")
            if not ref:
                trace.roots.append(root)
                continue
            _tid, origin_zone, parent_span_id = ref
            parent = index.get((origin_zone, parent_span_id))
            if parent is None:
                trace.orphans.append(root)
                continue
            parent.setdefault("children", []).append(root)
            trace.links.append((parent, root))
        if trace.roots or trace.orphans:
            stitched.append(trace)
    return stitched


def filter_traces(traces: List[StitchedTrace],
                  zone: Optional[str] = None,
                  op: Optional[str] = None,
                  min_latency: Optional[float] = None,
                  errors_only: bool = False) -> List[StitchedTrace]:
    """The CLI's trace filters (``--zone/--op/--min-latency/
    --errors-only``), combinable; each narrows the set."""
    out = []
    for trace in traces:
        if zone is not None and zone not in trace.zones:
            continue
        if op is not None and not any(
                span["name"] == op or
                str(span.get("labels", {}).get("op")) == op
                for _d, span in trace.walk()):
            continue
        if min_latency is not None and trace.latency < min_latency:
            continue
        if errors_only and not trace.has_error:
            continue
        out.append(trace)
    return out


# ---------------------------------------------------------------------------
# Perfetto export: one timeline, one process per zone, flow arrows at
# the WAN joints.
# ---------------------------------------------------------------------------


def stitched_chrome_trace(traces: List[StitchedTrace]) -> Dict[str, Any]:
    """Trace-event JSON for stitched cross-zone traces.

    Each zone becomes a Perfetto "process" (``pid``), each stitched
    trace one "thread" (``tid``) within the zones it touches, and every
    WAN joint a ``"s"`` → ``"f"`` flow pair from the origin span's
    start to its serve root's start — the arrow Perfetto draws across
    the process boundary.
    """
    zones = sorted({z for trace in traces for z in trace.zones})
    pids = {zone: pid for pid, zone in enumerate(zones, start=1)}
    events: List[Dict[str, Any]] = []
    for zone, pid in pids.items():
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": f"zone {zone}"}})
    flow_id = 0
    for tid, trace in enumerate(traces, start=1):
        for zone in trace.zones:
            events.append({
                "name": "thread_name", "ph": "M", "pid": pids[zone],
                "tid": tid,
                "args": {"name": f"trace {trace.trace_id}"}})
        for depth, span in trace.walk():
            end = span.get("end")
            start = span.get("start", 0.0)
            if end is None:
                end = start
            events.append({
                "name": span["name"],
                "ph": "X",
                "ts": start * _US,
                "dur": max(0.0, (end - start) * _US),
                "pid": pids.get(span.get("zone"), 0),
                "tid": tid,
                "args": {str(k): str(v) for k, v in sorted(
                    span.get("labels", {}).items())},
            })
        for parent, serve_root in trace.links:
            flow_id += 1
            events.append({
                "name": "wan", "ph": "s", "id": flow_id,
                "pid": pids.get(parent.get("zone"), 0), "tid": tid,
                "ts": parent.get("start", 0.0) * _US})
            events.append({
                "name": "wan", "ph": "f", "bp": "e", "id": flow_id,
                "pid": pids.get(serve_root.get("zone"), 0), "tid": tid,
                "ts": serve_root.get("start", 0.0) * _US})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_stitched_chrome_trace(path: str,
                                traces: List[StitchedTrace]) -> int:
    doc = stitched_chrome_trace(traces)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


__all__ = ["StitchedTrace", "walk_span_dict", "zone_traces_from_digests",
           "stitch_traces", "filter_traces", "stitched_chrome_trace",
           "write_stitched_chrome_trace"]
