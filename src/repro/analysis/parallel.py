"""Sharded-federation harness: run arms, prove equivalence, profile.

The honesty methodology from the PR 4 kernel rewrite (digest a run's
op-by-op results and assert the optimized path reproduces them exactly)
applied across process boundaries: a federation sharded one-zone-per-
worker must be *bit-identical* — per-zone op digests, event counts, and
metric-registry totals — to the same-seed run of the identical sharded
model executed sequentially in one process. The coordinator's window
decisions depend only on deterministic shard state, so any divergence
(pickling drift, cross-process RNG skew, message reordering) shows up as
a digest mismatch, not a silent wrong answer.

Two equivalence levels:

* :func:`compare_parallel` — parallel workers vs sequential one-process
  execution of the same sharded federation: **exact** (this is the
  claim the speedup numbers stand on).
* a 1-zone sharded run vs the plain single-loop
  :class:`~repro.core.Federation`: **exact** (same build/workload code,
  same host names — tested in tests/integration/test_parallel.py).

A multi-zone plain run is *not* bit-comparable to a sharded one — the
WAN timing models legitimately differ (remote RPCs through a shared
fabric vs gateway execution behind a WAN link) — so cross-model checks
are semantic only (all preloaded GETs hit, fan-outs apply, no misses).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from ..core.cell import CellSpec
from ..net import FabricConfig
from ..sim import ShardCoordinator, ShardRunReport
from ..core.parallelfed import (ZoneWorkloadSpec, run_plain_federation,
                                shard_builders)


def run_federation_arm(zones: Sequence[str],
                       cell_spec: Optional[CellSpec] = None,
                       fabric_config: Optional[FabricConfig] = None,
                       workload: Optional[ZoneWorkloadSpec] = None,
                       duration: float = 0.5,
                       mode: str = "sequential",
                       profile_dir: Optional[str] = None):
    """Run one arm of the sharded-federation comparison.

    ``mode`` is ``"parallel"`` (one worker process per zone),
    ``"sequential"`` (the same sharded model, one process), or
    ``"plain"`` (the single-event-loop :class:`~repro.core.Federation`).
    Returns a :class:`~repro.sim.ShardRunReport` for the sharded modes,
    or the plain run's summary dict.
    """
    zones = tuple(zones)
    cell_spec = cell_spec or CellSpec()
    fabric_config = fabric_config or FabricConfig()
    workload = workload or ZoneWorkloadSpec()
    if mode == "plain":
        return run_plain_federation(zones, cell_spec, fabric_config,
                                    workload, duration)
    if mode not in ("sequential", "parallel"):
        raise ValueError(f"unknown federation arm mode {mode!r}")
    coordinator = ShardCoordinator(
        shard_builders(zones, cell_spec, fabric_config, workload,
                       duration),
        lookahead=fabric_config.inter_zone_delay,
        run_for=duration, profile_dir=profile_dir)
    return coordinator.run(parallel=(mode == "parallel"))


def digest_mismatches(a: ShardRunReport,
                      b: ShardRunReport) -> List[str]:
    """Every way two sharded runs differ (empty == bit-identical)."""
    problems = []
    if len(a.digests) != len(b.digests):
        return [f"shard count differs: {len(a.digests)} vs "
                f"{len(b.digests)}"]
    for left, right in zip(a.digests, b.digests):
        zone = left.get("zone", "?")
        for field in ("zone", "ops", "ops_digest", "fed_stats",
                      "population", "metrics", "events", "final_now"):
            if left.get(field) != right.get(field):
                problems.append(
                    f"zone {zone}: {field} differs: "
                    f"{left.get(field)!r} vs {right.get(field)!r}")
    return problems


def assert_digest_equivalent(a: ShardRunReport, b: ShardRunReport) -> None:
    problems = digest_mismatches(a, b)
    if problems:
        raise AssertionError(
            "sharded runs are not digest-equivalent:\n  " +
            "\n  ".join(problems))


def compare_parallel(zones: Sequence[str],
                     cell_spec: Optional[CellSpec] = None,
                     fabric_config: Optional[FabricConfig] = None,
                     workload: Optional[ZoneWorkloadSpec] = None,
                     duration: float = 0.5,
                     profile_dir: Optional[str] = None) -> Dict[str, object]:
    """Sequential vs parallel execution of one sharded federation.

    Runs both arms on the same specs/seed, asserts bit-identical
    digests, and returns the comparison record (the shape
    benchmarks/bench_parallel.py persists). Speedup is reported two
    ways: ``speedup_wall`` (honest only with >= one core per worker
    plus one for the coordinator) and ``speedup_critical_path`` —
    sequential CPU over the parallel arm's critical path
    (sum over windows of the slowest shard's in-window CPU, plus
    coordinator CPU), which measures what the sharding *makes possible*
    independent of how many cores this machine happens to have.
    """
    sequential = run_federation_arm(zones, cell_spec, fabric_config,
                                    workload, duration, "sequential")
    parallel = run_federation_arm(zones, cell_spec, fabric_config,
                                  workload, duration, "parallel",
                                  profile_dir=profile_dir)
    assert_digest_equivalent(sequential, parallel)
    record = {
        "zones": list(zones),
        "duration": duration,
        "digest_equivalent": True,
        "events": parallel.events,
        "windows": parallel.windows,
        "messages_routed": parallel.messages_routed,
        "leaked_children": parallel.leaked_children,
        "sequential": _arm_record(sequential),
        "parallel": _arm_record(parallel),
        "cpu_count": os.cpu_count(),
    }
    if parallel.wall_seconds > 0:
        record["speedup_wall"] = (sequential.wall_seconds /
                                  parallel.wall_seconds)
    if parallel.critical_path_seconds > 0:
        record["speedup_critical_path"] = (
            sequential.critical_path_seconds /
            parallel.critical_path_seconds)
    return record


def _arm_record(report: ShardRunReport) -> Dict[str, object]:
    return {
        "mode": report.mode,
        "events": report.events,
        "wall_seconds": report.wall_seconds,
        "coordinator_cpu_seconds": report.coordinator_cpu_seconds,
        "shard_cpu_seconds": report.shard_cpu_seconds,
        "critical_path_seconds": report.critical_path_seconds,
        "events_per_critical_sec": report.events_per_critical_sec,
        "ops_digests": {d["zone"]: d["ops_digest"]
                        for d in report.digests},
    }


def profile_parallel_hotspots(zones: Sequence[str] = ("dc-a", "dc-b",
                                                      "dc-c", "dc-d"),
                              cell_spec: Optional[CellSpec] = None,
                              workload: Optional[ZoneWorkloadSpec] = None,
                              duration: float = 0.2,
                              top: int = 25, sort: str = "cumulative",
                              stream=None) -> None:
    """Profile a parallel sharded run and print ONE aggregated top-N.

    Each worker dumps its own cProfile stats (per-shard ``.prof``
    files); those are merged with ``pstats.Stats.add`` so hotspot
    analysis reads the same whether the run was sharded or not.
    """
    import pstats
    import sys
    import tempfile
    stream = stream or sys.stdout
    with tempfile.TemporaryDirectory(prefix="cliquemap-prof-") as prof_dir:
        report = run_federation_arm(
            zones, cell_spec=cell_spec, workload=workload,
            duration=duration, mode="parallel", profile_dir=prof_dir)
        prof_files = sorted(
            os.path.join(prof_dir, name)
            for name in os.listdir(prof_dir) if name.endswith(".prof"))
        if not prof_files:
            raise RuntimeError("no per-shard profiles were written")
        stats = pstats.Stats(prof_files[0], stream=stream)
        for path in prof_files[1:]:
            stats.add(path)
        print(f"aggregated {len(prof_files)} shard profiles | "
              f"zones={','.join(zones)} events={report.events} "
              f"windows={report.windows} "
              f"messages={report.messages_routed}", file=stream)
        stats.strip_dirs().sort_stats(sort).print_stats(top)


__all__ = ["run_federation_arm", "compare_parallel",
           "digest_mismatches", "assert_digest_equivalent",
           "profile_parallel_hotspots"]
