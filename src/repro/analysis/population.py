"""Population-model validation + the population-scale workload driver.

Two jobs, one honesty methodology (PR 4's digest template, adapted to a
statistical model):

* :func:`run_population_arm` drives one identically-seeded cell either
  with N *real* clients (one open-loop process each) or with an
  N-modeled :class:`~repro.workloads.ClientPopulation` on a small
  driver pool, and reports the same shape either way — latency
  percentiles, hit rate, offered/shed/thinned accounting.
* :func:`compare_population` runs both arms on the same seed and
  distills the comparison into a KS distance over the latency samples
  plus hit-rate and delivered-rate deltas — the numbers the validation
  tests and ``benchmarks/bench_population.py`` assert tolerances on.

A population-of-1 (one modeled client, one driver) consumes the exact
draw sequence of one real open-loop client, so the comparison collapses
to equality there; larger populations are compared statistically.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..core import Cell, CellSpec, ReplicationMode
from ..sim import RandomStream
from .stats import ks_distance

#: Percentiles reported (and compared) per arm.
PERCENTILES = (50.0, 90.0, 99.0)


def run_population_arm(mode: str, *,
                       num_modeled: int,
                       rate_per_client,
                       duration: float,
                       num_drivers: int = 4,
                       seed: int = 1,
                       transport: str = "pony",
                       num_hosts: int = 6,
                       num_keys: int = 512,
                       preload_fraction: float = 1.0,
                       value_bytes: int = 128,
                       batch_median: Optional[float] = None,
                       batch_sigma: float = 0.45,
                       batch_max: int = 100,
                       op_sample_rate: float = 1.0,
                       outstanding_cap: int = 64,
                       drain: float = 0.05,
                       keyspace_cache_ranks: int = 65536) -> Dict:
    """Drive one arm — ``mode`` is ``"real"`` or ``"population"``.

    Both modes build the same seeded cell, preload the zipf head
    (``preload_fraction`` of the corpus, so tail draws miss), and offer
    ``num_modeled * rate_per_client`` key-ops/sec for ``duration``
    simulated seconds; they differ only in who issues the arrivals.
    """
    # Imported here, not at module top: repro.workloads itself imports
    # repro.analysis (generators use the stats recorders), and a
    # module-level import back into workloads would deadlock whichever
    # package is imported second.
    from ..workloads import (BatchSizeSampler, KeySpace, LoadGenerator,
                             WorkloadMetrics, populate)

    if mode not in ("real", "population"):
        raise ValueError(f"mode must be 'real' or 'population', "
                         f"got {mode!r}")
    wall_start = time.perf_counter()
    cell = Cell(CellSpec(transport=transport, num_shards=num_hosts,
                         mode=ReplicationMode.R3_2, seed=seed))
    sim = cell.sim
    stream = RandomStream(seed, "population-arm")
    keyspace = KeySpace(stream.child("keys"), num_keys,
                        cache_ranks=keyspace_cache_ranks)
    batch_sampler = None
    if batch_median is not None:
        batch_sampler = BatchSizeSampler(stream.child("batches"),
                                         median=batch_median,
                                         sigma=batch_sigma, hi=batch_max)

    loader = cell.connect_client(strategy="2xr")
    installed = sim.run(until=sim.process(populate(
        loader, keyspace, value_bytes,
        count=max(1, int(preload_fraction * num_keys)))))

    pool_size = num_modeled if mode == "real" else num_drivers
    clients = [cell.connect_client(strategy="2xr")
               for _ in range(pool_size)]
    metrics = WorkloadMetrics()
    generator = LoadGenerator(sim, clients, keyspace,
                              stream.child("load"), metrics,
                              max_outstanding_per_client=outstanding_cap)
    if mode == "real":
        procs = generator.start_open_loop_gets(
            rate_per_client, duration, batch_sampler)
    else:
        procs = generator.start_population_gets(
            num_modeled, rate_per_client, duration, batch_sampler,
            op_sample_rate=op_sample_rate)
    start_sim = sim.now
    sim.run(until=sim.all_of(procs))
    sim.run(until=sim.now + drain)   # let in-flight batches land
    sim_elapsed = sim.now - start_sim
    events = sim._seq
    shed_total = cell.metrics.total("cliquemap_loadgen_shed_total")
    cell.close()
    wall = time.perf_counter() - wall_start

    latency = metrics.get_latency
    return {
        "mode": mode,
        "transport": transport,
        "num_hosts": num_hosts,
        "num_modeled": num_modeled,
        "drivers": pool_size,
        "seed": seed,
        "num_keys": num_keys,
        "preloaded": installed,
        "offered": metrics.offered,
        "shed": metrics.shed,
        "thinned": metrics.thinned,
        "driven": metrics.offered - metrics.shed - metrics.thinned,
        "ops": metrics.gets,
        "hits": metrics.hits,
        "errors": metrics.get_errors,
        "hit_rate": metrics.hit_rate,
        "shed_counter": shed_total,
        "op_sample_rate": op_sample_rate if mode == "population" else 1.0,
        "latency_us": {f"p{p:g}": latency.percentile(p) * 1e6
                       for p in PERCENTILES},
        "latency_samples": latency.samples(),
        "sim_seconds": sim_elapsed,
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "offered_per_wall_sec": metrics.offered / wall if wall > 0
        else 0.0,
    }


def compare_population(num_modeled: int = 16, num_drivers: int = 2,
                       rate_per_client: float = 400.0,
                       duration: float = 0.5, seed: int = 1,
                       **kwargs) -> Dict:
    """Run the real-clients and population arms on one seed and compare.

    Returns both arm reports (latency samples stripped) plus the
    comparison scalars: the two-sample KS distance between latency
    distributions, the absolute hit-rate delta, and the delivered-ops
    ratio (population/real, thinning-corrected).
    """
    real = run_population_arm("real", num_modeled=num_modeled,
                              rate_per_client=rate_per_client,
                              duration=duration, seed=seed, **kwargs)
    population = run_population_arm(
        "population", num_modeled=num_modeled, num_drivers=num_drivers,
        rate_per_client=rate_per_client, duration=duration, seed=seed,
        **kwargs)
    ks = ks_distance(real["latency_samples"],
                     population["latency_samples"])
    sample_rate = population["op_sample_rate"]
    # Thinned ops are statistically delivered: scale the population's
    # driven count back up before comparing against the real arm.
    scaled = population["ops"] / sample_rate
    comparison = {
        "ks_distance": ks,
        "hit_rate_delta": abs(real["hit_rate"] -
                              population["hit_rate"]),
        "delivered_ratio": scaled / real["ops"] if real["ops"] else 0.0,
        "p99_ratio": (population["latency_us"]["p99"] /
                      real["latency_us"]["p99"]
                      if real["latency_us"]["p99"] else 0.0),
    }
    for arm in (real, population):
        del arm["latency_samples"]
    return {"real": real, "population": population,
            "comparison": comparison}


__all__ = ["PERCENTILES", "run_population_arm", "compare_population"]
