"""Perf-trajectory harness: batched vs singleton multi-key GETs (§7.1).

The repo's perf trajectory is a series of ``BENCH_*.json`` files, one per
optimization, each produced by a deterministic simulated experiment. This
module provides the first datapoint: the wire-level batched ``get_multi``
path against a loop of singleton GETs, comparing per-key engine/NIC CPU
and per-key latency on the same topology.

Determinism: both arms build a fresh :class:`~repro.core.Cell` from the
same seed, so the comparison is exact and reproducible — no wall-clock
anywhere.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, List

from ..core import Cell, CellSpec, GetStatus, ReplicationMode
from ..sim import RandomStream, ZipfSampler

# Which CPU-ledger component carries the transport's dataplane cost.
# Pony engines charge both sides; hardware transports charge only the
# client's submit/poll CPU (the server path has no software).
ENGINE_COMPONENTS: Dict[str, tuple] = {
    "pony": ("pony",),
    "rdma": ("rma-client",),
    "1rma": ("rma-client",),
}


def _engine_cpu(hosts, components) -> float:
    return sum(host.ledger.seconds(component)
               for host in hosts for component in components)


def _build_cell(transport: str, num_shards: int, seed: int):
    cell = Cell(CellSpec(transport=transport, num_shards=num_shards,
                         seed=seed))
    client = cell.connect_client(strategy="2xr")
    return cell, client


def _preload(cell, client, keys: List[bytes], value_bytes: int) -> None:
    def setup():
        for key in keys:
            result = yield from client.set(key, bytes(value_bytes))
            assert result.ok, (key, result)

    cell.sim.run(until=cell.sim.process(setup()))


def run_multiget_benchmark(num_keys: int = 32, transport: str = "pony",
                           value_bytes: int = 128, num_shards: int = 6,
                           seed: int = 1) -> Dict:
    """Measure batched ``get_multi`` against ``num_keys`` singleton GETs.

    Returns a JSON-ready dict with per-key engine CPU and latency for
    both arms plus the batched/singleton speedup ratios.
    """
    components = ENGINE_COMPONENTS[transport]
    keys = [b"mk-%05d" % i for i in range(num_keys)]

    # Arm 1: singleton GETs, issued sequentially so the mean per-key
    # latency is the undisturbed 2xR op latency.
    cell_s, client_s = _build_cell(transport, num_shards, seed)
    _preload(cell_s, client_s, keys, value_bytes)
    hosts_s = [client_s.host] + [b.host for b in cell_s.backends.values()]
    cpu_before = _engine_cpu(hosts_s, components)
    latencies: List[float] = []

    def singleton_loop():
        for key in keys:
            result = yield from client_s.get(key)
            assert result.status is GetStatus.HIT, (key, result)
            latencies.append(result.latency)

    cell_s.sim.run(until=cell_s.sim.process(singleton_loop()))
    singleton_cpu = (_engine_cpu(hosts_s, components) -
                     cpu_before) / num_keys
    singleton_latency = sum(latencies) / num_keys
    singleton_reads = cell_s.transport.counters.reads
    cell_s.close()

    # Arm 2: one batched get_multi over the same keys on a fresh,
    # identically-seeded cell.
    cell_b, client_b = _build_cell(transport, num_shards, seed)
    _preload(cell_b, client_b, keys, value_bytes)
    hosts_b = [client_b.host] + [b.host for b in cell_b.backends.values()]
    cpu_before = _engine_cpu(hosts_b, components)
    started = cell_b.sim.now
    results = cell_b.sim.run(
        until=cell_b.sim.process(client_b.get_multi(keys)))
    batch_elapsed = cell_b.sim.now - started
    batched_cpu = (_engine_cpu(hosts_b, components) - cpu_before) / num_keys
    batched_latency = batch_elapsed / num_keys
    for key, result in zip(keys, results):
        assert result.status is GetStatus.HIT, (key, result)
    counters = cell_b.transport.counters
    fallbacks = cell_b.metrics.total("cliquemap_batch_fallback_total")
    cell_b.close()

    return {
        "benchmark": "multiget",
        "transport": transport,
        "num_keys": num_keys,
        "value_bytes": value_bytes,
        "num_shards": num_shards,
        "seed": seed,
        "singleton": {
            "engine_cpu_per_key_us": singleton_cpu * 1e6,
            "latency_per_key_us": singleton_latency * 1e6,
            "transport_reads": singleton_reads,
        },
        "batched": {
            "engine_cpu_per_key_us": batched_cpu * 1e6,
            "latency_per_key_us": batched_latency * 1e6,
            "transport_reads": counters.reads,
            "batched_reads": counters.batched_reads,
            "batched_keys": counters.batched_keys,
            "fallback_keys": fallbacks,
        },
        "engine_cpu_speedup": singleton_cpu / batched_cpu,
        "latency_speedup": singleton_latency / batched_latency,
    }


# Kernel-stress shape mix: (name, workers, rounds). Weighted toward
# zero-delay work because that is what a cell run schedules most — every
# event trigger (process resume, RPC completion, RMA callback) is a
# zero-delay action; only genuine link/CPU delays and timers hit the
# heap. ``ticker`` keeps the heap path honest in the blend.
KERNEL_STRESS_SHAPES = (
    ("ticker", 8, 1200),    # staggered heap timers
    ("storm", 16, 1200),    # zero-delay timeout resumes (ready queue)
    ("sleeper", 8, 1200),   # pooled retry/backoff sleeps
    ("callbacks", 2, 9600),  # bare call_soon storm, no generators
    ("fanout", 8, 600),     # all_of/any_of + manually-signalled events
)


def _stress_shape(sim, shape: str, workers: int, rounds: int) -> None:
    """Run one shape to completion on ``sim`` (any Simulator interface)."""

    def ticker(period: float):
        for _ in range(rounds):
            yield sim.timeout(period)

    def storm():
        for _ in range(rounds):
            yield sim.timeout(0)

    def sleeper():
        for i in range(rounds):
            yield sim.sleep(1e-6 * (i % 5))

    def fanout():
        for i in range(rounds // 8):
            yield sim.all_of([sim.timeout(1e-6 * k) for k in range(4)])
            _ev, _value = yield sim.any_of(
                [sim.timeout(1e-6), sim.timeout(2e-6)])
            signal = sim.event()
            sim.call_in(1e-6, signal.succeed, i)
            yield signal

    if shape == "callbacks":
        remaining = [workers * rounds]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.call_soon(tick)

        for _ in range(workers):
            sim.call_soon(tick)
        sim.run()
        return
    gens = {"ticker": lambda w: ticker(1e-6 * (1 + w)),
            "storm": lambda w: storm(),
            "sleeper": lambda w: sleeper(),
            "fanout": lambda w: fanout()}[shape]
    procs = [sim.process(gens(w)) for w in range(workers)]
    sim.run(until=sim.all_of(procs))


def run_kernel_stress(sim_factory, scale: float = 1.0,
                      repeats: int = 3) -> Dict:
    """Measure raw kernel events/sec over the deterministic shape mix.

    ``sim_factory`` builds a fresh simulator per run — pass
    :class:`~repro.sim.Simulator` for the live kernel, or the benchmarks'
    legacy baseline kernel, so both arms run the identical load. Each
    shape runs ``repeats`` times and keeps its best wall time (standard
    microbenchmark practice: the minimum is the least noise-polluted
    sample). Returns per-shape and aggregate events (scheduled actions)
    and wall seconds.
    """
    shapes: Dict[str, Dict] = {}
    total_events = 0
    total_wall = 0.0
    for name, workers, rounds in KERNEL_STRESS_SHAPES:
        best_wall = float("inf")
        events = 0
        for _ in range(max(1, repeats)):
            sim = sim_factory()
            start = time.perf_counter()
            _stress_shape(sim, name, workers, max(1, int(rounds * scale)))
            wall = time.perf_counter() - start
            events = sim._seq
            best_wall = min(best_wall, wall)
        shapes[name] = {
            "events": events,
            "wall_seconds": best_wall,
            "events_per_sec": events / best_wall if best_wall > 0 else 0.0,
        }
        total_events += events
        total_wall += best_wall
    return {
        "shapes": shapes,
        "events": total_events,
        "wall_seconds": total_wall,
        "events_per_sec": total_events / total_wall if total_wall else 0.0,
    }


def compare_kernel_stress(new_factory, legacy_factory,
                          scale: float = 1.0, repeats: int = 3) -> Dict:
    """Run the stress mix on two kernels, interleaved repeat-by-repeat.

    Benchmarking the kernels back-to-back lets machine drift (thermal
    throttling, cache warm-up, a noisy neighbour) land entirely on one
    arm and skew the ratio. Interleaving each shape's repeats —
    new, legacy, new, legacy, ... — spreads any drift across both arms,
    and best-of-``repeats`` per arm discards the polluted samples.
    Returns ``{"new": ..., "legacy": ..., "speedup": ...}`` where the two
    kernel entries match :func:`run_kernel_stress` output.
    """
    arms = {"new": new_factory, "legacy": legacy_factory}
    best: Dict[str, Dict[str, float]] = {k: {} for k in arms}
    events: Dict[str, Dict[str, int]] = {k: {} for k in arms}
    for name, workers, rounds in KERNEL_STRESS_SHAPES:
        rounds = max(1, int(rounds * scale))
        for _ in range(max(1, repeats)):
            for arm, factory in arms.items():
                sim = factory()
                start = time.perf_counter()
                _stress_shape(sim, name, workers, rounds)
                wall = time.perf_counter() - start
                events[arm][name] = sim._seq
                prev = best[arm].get(name, float("inf"))
                best[arm][name] = min(prev, wall)

    out: Dict = {}
    for arm in arms:
        shapes = {}
        total_events = 0
        total_wall = 0.0
        for name, _w, _r in KERNEL_STRESS_SHAPES:
            ev, wall = events[arm][name], best[arm][name]
            shapes[name] = {
                "events": ev,
                "wall_seconds": wall,
                "events_per_sec": ev / wall if wall > 0 else 0.0,
            }
            total_events += ev
            total_wall += wall
        out[arm] = {
            "shapes": shapes,
            "events": total_events,
            "wall_seconds": total_wall,
            "events_per_sec": (total_events / total_wall
                               if total_wall else 0.0),
        }
    new_rate = out["new"]["events_per_sec"]
    legacy_rate = out["legacy"]["events_per_sec"]
    out["speedup"] = new_rate / legacy_rate if legacy_rate else float("inf")
    return out


def run_scale_workload(transport: str = "pony", num_hosts: int = 200,
                       ops: int = 50000, seed: int = 1, sim=None,
                       num_clients: int = 8, batch: int = 4,
                       num_keys: int = 1024, value_bytes: int = 128,
                       tracing: bool = False, observe: bool = False) -> Dict:
    """Drive a paper-scale cell end-to-end and digest every op outcome.

    Builds a ``num_hosts``-backend cell (R=3 quorum), preloads a zipf
    corpus, and issues ``ops`` closed-loop GETs through batched
    ``get_multi`` across ``num_clients`` clients. Returns wall-clock,
    scheduled-action, and simulated-time totals plus a digest over every
    op's (status, value-size, attempts, latency) in completion order —
    two kernels are order-equivalent iff their digests match.

    ``sim`` injects an alternative simulator (the benchmarks pass the
    pre-optimization baseline kernel); ``None`` uses the live kernel.
    ``observe`` attaches the observability plane in scrape-only form
    (time-series scraper + SLO engine, no probers: prober traffic would
    perturb the op digest); scraping rides a clock tap, so the digest
    and event count stay identical to an unobserved run.
    """
    spec = CellSpec(transport=transport, num_shards=num_hosts,
                    mode=ReplicationMode.R3_2, seed=seed, tracing=tracing)
    wall_start = time.perf_counter()
    cell = Cell(spec, sim=sim)
    sim = cell.sim
    if observe:
        from ..observe import ObserveConfig
        cell.observe(ObserveConfig(probers=0, scrape_interval=1e-3))
    keys = [b"sk-%05d" % i for i in range(num_keys)]
    value = bytes(value_bytes)

    client0 = cell.connect_client(strategy="2xr")
    clients = [client0] + [cell.connect_client(strategy="2xr")
                           for _ in range(num_clients - 1)]

    def preload():
        for key in keys:
            result = yield from client0.set(key, value)
            assert result.ok, (key, result)

    sim.run(until=sim.process(preload()))

    digest = hashlib.blake2b(digest_size=16)
    counts = {"ops": 0, "hits": 0, "misses": 0, "errors": 0}
    per_worker = -(-ops // num_clients)  # ceil: total >= requested ops

    def worker(wid: int, client) -> "object":
        sampler = ZipfSampler(RandomStream(seed, f"scale-{wid}"), num_keys)
        issued = 0
        while issued < per_worker:
            n = min(batch, per_worker - issued)
            wanted = [keys[r] for r in sampler.sample_n(n)]
            results = yield from client.get_multi(wanted)
            for result in results:
                counts["ops"] += 1
                if result.status is GetStatus.HIT:
                    counts["hits"] += 1
                elif result.status is GetStatus.MISS:
                    counts["misses"] += 1
                else:
                    counts["errors"] += 1
                digest.update(
                    b"%d|%s|%d|%d|%s;" %
                    (wid, result.status.name.encode(),
                     len(result.value or b""), result.attempts,
                     repr(result.latency).encode()))
            issued += n

    procs = [sim.process(worker(i, c)) for i, c in enumerate(clients)]
    start_sim = sim.now
    sim.run(until=sim.all_of(procs))
    sim_elapsed = sim.now - start_sim
    scrapes = cell.observability.scraper.scrapes if observe else 0
    cell.close()
    wall = time.perf_counter() - wall_start

    return {
        "benchmark": "scale",
        "scrapes": scrapes,
        "transport": transport,
        "num_hosts": num_hosts,
        "num_clients": num_clients,
        "mode": "R3_2",
        "seed": seed,
        "ops": counts["ops"],
        "hits": counts["hits"],
        "misses": counts["misses"],
        "errors": counts["errors"],
        "digest": digest.hexdigest(),
        "events": sim._seq,
        "sim_seconds": sim_elapsed,
        "wall_seconds": wall,
        "events_per_sec": sim._seq / wall if wall > 0 else 0.0,
        "ops_per_wall_sec": counts["ops"] / wall if wall > 0 else 0.0,
    }


def profile_hotspots(top: int = 25, transport: str = "pony",
                     num_hosts: int = 24, ops: int = 2000,
                     seed: int = 1, sort: str = "cumulative",
                     stream=None) -> Dict:
    """Run a short scale workload under cProfile; print top-N hot spots.

    The profiling hook future optimization PRs start from: it answers
    "where does kernel wall-clock go now?" without any setup.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_scale_workload(transport=transport, num_hosts=num_hosts,
                                ops=ops, seed=seed)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=stream) if stream is not None \
        else pstats.Stats(profiler)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return result


def write_bench_json(result: Dict, path: str) -> None:
    """Write one perf datapoint where the trajectory tooling expects it."""
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_multiget_table(result: Dict) -> str:
    """A small human-readable summary of one multiget datapoint."""
    lines = [
        f"multiget benchmark — transport={result['transport']} "
        f"keys={result['num_keys']}",
        f"  singleton: {result['singleton']['engine_cpu_per_key_us']:.3f} "
        f"us CPU/key, {result['singleton']['latency_per_key_us']:.2f} "
        f"us latency/key",
        f"  batched:   {result['batched']['engine_cpu_per_key_us']:.3f} "
        f"us CPU/key, {result['batched']['latency_per_key_us']:.2f} "
        f"us latency/key",
        f"  speedup:   {result['engine_cpu_speedup']:.2f}x engine CPU, "
        f"{result['latency_speedup']:.2f}x latency",
    ]
    return "\n".join(lines)


__all__ = [
    "ENGINE_COMPONENTS", "run_multiget_benchmark", "write_bench_json",
    "render_multiget_table", "run_kernel_stress", "compare_kernel_stress",
    "run_scale_workload",
    "profile_hotspots",
]
