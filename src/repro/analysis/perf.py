"""Perf-trajectory harness: batched vs singleton multi-key GETs (§7.1).

The repo's perf trajectory is a series of ``BENCH_*.json`` files, one per
optimization, each produced by a deterministic simulated experiment. This
module provides the first datapoint: the wire-level batched ``get_multi``
path against a loop of singleton GETs, comparing per-key engine/NIC CPU
and per-key latency on the same topology.

Determinism: both arms build a fresh :class:`~repro.core.Cell` from the
same seed, so the comparison is exact and reproducible — no wall-clock
anywhere.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..core import Cell, CellSpec, GetStatus

# Which CPU-ledger component carries the transport's dataplane cost.
# Pony engines charge both sides; hardware transports charge only the
# client's submit/poll CPU (the server path has no software).
ENGINE_COMPONENTS: Dict[str, tuple] = {
    "pony": ("pony",),
    "rdma": ("rma-client",),
    "1rma": ("rma-client",),
}


def _engine_cpu(hosts, components) -> float:
    return sum(host.ledger.seconds(component)
               for host in hosts for component in components)


def _build_cell(transport: str, num_shards: int, seed: int):
    cell = Cell(CellSpec(transport=transport, num_shards=num_shards,
                         seed=seed))
    client = cell.connect_client(strategy="2xr")
    return cell, client


def _preload(cell, client, keys: List[bytes], value_bytes: int) -> None:
    def setup():
        for key in keys:
            result = yield from client.set(key, bytes(value_bytes))
            assert result.ok, (key, result)

    cell.sim.run(until=cell.sim.process(setup()))


def run_multiget_benchmark(num_keys: int = 32, transport: str = "pony",
                           value_bytes: int = 128, num_shards: int = 6,
                           seed: int = 1) -> Dict:
    """Measure batched ``get_multi`` against ``num_keys`` singleton GETs.

    Returns a JSON-ready dict with per-key engine CPU and latency for
    both arms plus the batched/singleton speedup ratios.
    """
    components = ENGINE_COMPONENTS[transport]
    keys = [b"mk-%05d" % i for i in range(num_keys)]

    # Arm 1: singleton GETs, issued sequentially so the mean per-key
    # latency is the undisturbed 2xR op latency.
    cell_s, client_s = _build_cell(transport, num_shards, seed)
    _preload(cell_s, client_s, keys, value_bytes)
    hosts_s = [client_s.host] + [b.host for b in cell_s.backends.values()]
    cpu_before = _engine_cpu(hosts_s, components)
    latencies: List[float] = []

    def singleton_loop():
        for key in keys:
            result = yield from client_s.get(key)
            assert result.status is GetStatus.HIT, (key, result)
            latencies.append(result.latency)

    cell_s.sim.run(until=cell_s.sim.process(singleton_loop()))
    singleton_cpu = (_engine_cpu(hosts_s, components) -
                     cpu_before) / num_keys
    singleton_latency = sum(latencies) / num_keys
    singleton_reads = cell_s.transport.counters.reads
    cell_s.close()

    # Arm 2: one batched get_multi over the same keys on a fresh,
    # identically-seeded cell.
    cell_b, client_b = _build_cell(transport, num_shards, seed)
    _preload(cell_b, client_b, keys, value_bytes)
    hosts_b = [client_b.host] + [b.host for b in cell_b.backends.values()]
    cpu_before = _engine_cpu(hosts_b, components)
    started = cell_b.sim.now
    results = cell_b.sim.run(
        until=cell_b.sim.process(client_b.get_multi(keys)))
    batch_elapsed = cell_b.sim.now - started
    batched_cpu = (_engine_cpu(hosts_b, components) - cpu_before) / num_keys
    batched_latency = batch_elapsed / num_keys
    for key, result in zip(keys, results):
        assert result.status is GetStatus.HIT, (key, result)
    counters = cell_b.transport.counters
    fallbacks = cell_b.metrics.total("cliquemap_batch_fallback_total")
    cell_b.close()

    return {
        "benchmark": "multiget",
        "transport": transport,
        "num_keys": num_keys,
        "value_bytes": value_bytes,
        "num_shards": num_shards,
        "seed": seed,
        "singleton": {
            "engine_cpu_per_key_us": singleton_cpu * 1e6,
            "latency_per_key_us": singleton_latency * 1e6,
            "transport_reads": singleton_reads,
        },
        "batched": {
            "engine_cpu_per_key_us": batched_cpu * 1e6,
            "latency_per_key_us": batched_latency * 1e6,
            "transport_reads": counters.reads,
            "batched_reads": counters.batched_reads,
            "batched_keys": counters.batched_keys,
            "fallback_keys": fallbacks,
        },
        "engine_cpu_speedup": singleton_cpu / batched_cpu,
        "latency_speedup": singleton_latency / batched_latency,
    }


def write_bench_json(result: Dict, path: str) -> None:
    """Write one perf datapoint where the trajectory tooling expects it."""
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_multiget_table(result: Dict) -> str:
    """A small human-readable summary of one multiget datapoint."""
    lines = [
        f"multiget benchmark — transport={result['transport']} "
        f"keys={result['num_keys']}",
        f"  singleton: {result['singleton']['engine_cpu_per_key_us']:.3f} "
        f"us CPU/key, {result['singleton']['latency_per_key_us']:.2f} "
        f"us latency/key",
        f"  batched:   {result['batched']['engine_cpu_per_key_us']:.3f} "
        f"us CPU/key, {result['batched']['latency_per_key_us']:.2f} "
        f"us latency/key",
        f"  speedup:   {result['engine_cpu_speedup']:.2f}x engine CPU, "
        f"{result['latency_speedup']:.2f}x latency",
    ]
    return "\n".join(lines)


__all__ = [
    "ENGINE_COMPONENTS", "run_multiget_benchmark", "write_bench_json",
    "render_multiget_table",
]
