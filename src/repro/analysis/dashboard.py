"""Cell monitoring: aggregate health/efficiency snapshots.

Production operation needs observable cells: per-backend residency and
DRAM, operation counters, retry/validation rates, repair activity, RPC
byte rates, engine scale-out state, CPU by component. This module
assembles one immutable snapshot of all of it from a running cell — the
sort of page an SRE would watch during a rollout (§6.1's "essentially
always in progress" upgrades make this non-optional).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .reporting import render_alerts, render_sli, render_table


@dataclass
class BackendSnapshot:
    task: str
    shard: int
    alive: bool
    resident_keys: int
    dram_bytes: int
    index_load_factor: float
    sets_applied: int
    evictions: int
    overflow_entries: int
    data_region_grows: int
    index_resizes: int
    repairs_applied: int
    defrag_moves: int
    rpc_calls: int
    rpc_bytes: int
    cpu_seconds: Dict[str, float] = field(default_factory=dict)
    pony_engines: Optional[int] = None


@dataclass
class ClientSnapshot:
    name: str
    gets: int
    hit_rate: float
    retries: int
    validation_failures: int
    torn_reads: int
    sets: int


@dataclass
class CellSnapshot:
    """One point-in-time view of a whole cell."""

    time: float
    config_id: int
    mode: str
    backends: List[BackendSnapshot]
    clients: List[ClientSnapshot]
    # Full telemetry registry export (``cell.metrics.snapshot()``): one
    # entry per metric family, each with its labeled series.
    metrics: Dict[str, dict] = field(default_factory=dict)
    # When the cell runs the observability plane: its SLI summary and
    # the alert transitions so far (dicts from ``AlertEvent.to_dict``).
    sli: Optional[dict] = None
    alerts: List[dict] = field(default_factory=list)

    # -- aggregates -----------------------------------------------------------

    @property
    def total_dram_bytes(self) -> int:
        return sum(b.dram_bytes for b in self.backends if b.alive)

    @property
    def total_resident_keys(self) -> int:
        return sum(b.resident_keys for b in self.backends if b.alive)

    @property
    def total_rpc_bytes(self) -> int:
        return sum(b.rpc_bytes for b in self.backends)

    @property
    def alive_backends(self) -> int:
        return sum(1 for b in self.backends if b.alive)

    @property
    def total_gets(self) -> int:
        return sum(c.gets for c in self.clients)

    @property
    def aggregate_hit_rate(self) -> float:
        gets = self.total_gets
        if not gets:
            return 0.0
        hits = sum(c.gets * c.hit_rate for c in self.clients)
        return hits / gets

    def render(self) -> str:
        backend_rows = [[b.task, b.shard, "up" if b.alive else "DOWN",
                         b.resident_keys, f"{b.dram_bytes / 1e6:.2f}",
                         f"{b.index_load_factor:.2f}", b.evictions,
                         b.repairs_applied,
                         b.pony_engines if b.pony_engines is not None else "-"]
                        for b in self.backends]
        client_rows = [[c.name, c.gets, f"{c.hit_rate:.3f}", c.retries,
                        c.torn_reads, c.sets] for c in self.clients]
        parts = [
            f"cell snapshot @ t={self.time:.3f}s  mode={self.mode}  "
            f"config-gen={self.config_id}  "
            f"backends={self.alive_backends}/{len(self.backends)}  "
            f"DRAM={self.total_dram_bytes / 1e6:.2f}MB  "
            f"keys={self.total_resident_keys}",
            render_table("backends",
                         ["task", "shard", "state", "keys", "DRAM MB",
                          "load", "evictions", "repairs", "engines"],
                         backend_rows),
        ]
        if client_rows:
            parts.append(render_table(
                "clients", ["client", "gets", "hit rate", "retries",
                            "torn reads", "sets"], client_rows))
        if self.sli is not None:
            parts.append(render_sli("SLIs (prober vantage)", self.sli))
        if self.alerts:
            parts.append(render_alerts("SLO alerts", self.alerts))
        return "\n".join(parts)


def snapshot_cell(cell, clients=()) -> CellSnapshot:
    """Collect a :class:`CellSnapshot` from a live cell."""
    backends = []
    for task, backend in sorted(cell.backends.items()):
        engines = None
        transport = cell.transport
        if transport is not None and hasattr(transport, "engine_groups"):
            group = transport.engine_groups.get(backend.host.name)
            if group is not None:
                engines = group.engine_count
        stats = backend.stats
        backends.append(BackendSnapshot(
            task=task, shard=backend.shard, alive=backend.alive,
            resident_keys=backend.resident_keys,
            dram_bytes=backend.dram_used_bytes(),
            index_load_factor=backend.index.load_factor,
            sets_applied=stats.sets_applied,
            evictions=stats.evictions_capacity +
            stats.evictions_associativity,
            overflow_entries=len(backend.overflow),
            data_region_grows=stats.data_region_grows,
            index_resizes=stats.index_resizes,
            repairs_applied=stats.repairs_applied,
            defrag_moves=stats.defrag_moves,
            rpc_calls=backend.rpc_server.metrics.calls,
            rpc_bytes=backend.rpc_server.metrics.total_bytes,
            cpu_seconds=backend.host.ledger.snapshot(),
            pony_engines=engines))
    client_snaps = []
    for client in clients:
        stats = client.stats
        gets = stats["gets"]
        client_snaps.append(ClientSnapshot(
            name=f"client-{client.client_id}", gets=gets,
            hit_rate=stats["hits"] / gets if gets else 0.0,
            retries=stats["retries"],
            validation_failures=stats["validation_failures"],
            torn_reads=stats["torn_reads"], sets=stats["sets"]))
    config = cell.config_store.peek(cell.spec.name)
    registry = getattr(cell, "metrics", None)
    plane = getattr(cell, "observability", None)
    return CellSnapshot(time=cell.sim.now, config_id=config.config_id,
                        mode=config.mode.value, backends=backends,
                        clients=client_snaps,
                        metrics=registry.snapshot() if registry else {},
                        sli=plane.sli_summary() if plane else None,
                        alerts=[e.to_dict() for e in plane.engine.events]
                        if plane else [])
