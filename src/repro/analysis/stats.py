"""Measurement utilities: latency percentiles, time series, rates, CPU.

Benchmarks record operation latencies and byte/op counts here and read
back the same aggregates the paper's figures plot: percentile lines over
time, op-rate series, CPU-per-op, and CDFs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sim import percentile


class LatencyRecorder:
    """Collects scalar samples and reports percentiles."""

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        self._samples.extend(values)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``nan`` when no samples are recorded."""
        if not self._samples:
            return math.nan
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return percentile(self._sorted, p)

    def percentiles(self, ps: Sequence[float]) -> Dict[float, float]:
        return {p: self.percentile(p) for p in ps}

    def samples(self) -> List[float]:
        """A copy of the raw samples, in recording order."""
        return list(self._samples)

    def mean(self) -> float:
        """Arithmetic mean; ``nan`` when no samples are recorded.

        Empty recorders are routine (e.g. an error-only benchmark step),
        so this degrades to ``nan`` — which propagates visibly through
        arithmetic and formats as ``nan`` — instead of raising."""
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = None


class TimeSeries:
    """(time, value) samples bucketed into fixed bins for plotting."""

    def __init__(self, bin_width: float, name: str = ""):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = bin_width
        self.name = name
        self._bins: Dict[int, List[float]] = {}

    def record(self, t: float, value: float) -> None:
        self._bins.setdefault(int(t // self.bin_width), []).append(value)

    def bins(self) -> List[int]:
        return sorted(self._bins)

    def series(self, p: float = 50.0) -> List[Tuple[float, float]]:
        """Per-bin percentile as (bin_center_time, value) points."""
        out = []
        for b in self.bins():
            values = sorted(self._bins[b])
            out.append(((b + 0.5) * self.bin_width, percentile(values, p)))
        return out

    def counts(self) -> List[Tuple[float, int]]:
        return [((b + 0.5) * self.bin_width, len(self._bins[b]))
                for b in self.bins()]

    def rate_series(self) -> List[Tuple[float, float]]:
        """Events per second per bin."""
        return [(t, n / self.bin_width) for t, n in self.counts()]


class CounterSeries:
    """Accumulates additive quantities (e.g. bytes) into time bins."""

    def __init__(self, bin_width: float, name: str = ""):
        self.bin_width = bin_width
        self.name = name
        self._bins: Dict[int, float] = {}

    def add(self, t: float, amount: float) -> None:
        key = int(t // self.bin_width)
        self._bins[key] = self._bins.get(key, 0.0) + amount

    def per_second(self) -> List[Tuple[float, float]]:
        return [((b + 0.5) * self.bin_width, v / self.bin_width)
                for b, v in sorted(self._bins.items())]

    def total(self) -> float:
        return sum(self._bins.values())


def cdf_points(samples: Sequence[float],
               points: int = 100) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction<=value) pairs."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    step = max(1, n // points)
    out = [(ordered[i], (i + 1) / n) for i in range(0, n, step)]
    if out[-1][1] != 1.0:
        out.append((ordered[-1], 1.0))
    return out


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic: sup |F_a(x) - F_b(x)|.

    The statistic alone (no p-value machinery) — the population
    validation harness compares fixed-seed runs against a tolerance, so
    a distribution-free distance in [0, 1] is exactly what's needed.
    """
    if not a or not b:
        raise ValueError("ks_distance needs samples on both sides")
    xs, ys = sorted(a), sorted(b)
    na, nb = len(xs), len(ys)
    i = j = 0
    distance = 0.0
    while i < na and j < nb:
        if xs[i] <= ys[j]:
            i += 1
        else:
            j += 1
        gap = abs(i / na - j / nb)
        if gap > distance:
            distance = gap
    return distance


def cpu_us_per_op(cpu_seconds: float, ops: int) -> float:
    if ops <= 0:
        raise ValueError("no operations recorded")
    return cpu_seconds / ops * 1e6


def cpu_ns_per_op(cpu_seconds: float, ops: int) -> float:
    return cpu_us_per_op(cpu_seconds, ops) * 1e3
