"""Measurement and reporting utilities for tests and benchmarks."""

from .bench_history import (bench_rows, load_bench_files, perf_history,
                            render_history)
from .dashboard import (BackendSnapshot, CellSnapshot, ClientSnapshot,
                        snapshot_cell)
from .perf import (compare_kernel_stress, profile_hotspots,
                   render_multiget_table, run_kernel_stress,
                   run_multiget_benchmark, run_scale_workload,
                   write_bench_json)
from .parallel import (assert_digest_equivalent, compare_parallel,
                       digest_mismatches, profile_parallel_hotspots,
                       run_federation_arm)
from .population import (PERCENTILES, compare_population,
                         run_population_arm)
from .reporting import (render_alerts, render_metrics,
                        render_percentile_lines, render_series,
                        render_sli, render_table, render_timeseries,
                        sparkline)
from .stats import (CounterSeries, LatencyRecorder, TimeSeries, cdf_points,
                    cpu_ns_per_op, cpu_us_per_op, ks_distance)
from .stitch import (StitchedTrace, filter_traces, stitch_traces,
                     stitched_chrome_trace, walk_span_dict,
                     write_stitched_chrome_trace, zone_traces_from_digests)

__all__ = [
    "BackendSnapshot", "CellSnapshot", "ClientSnapshot", "snapshot_cell",
    "render_metrics", "render_percentile_lines", "render_series",
    "render_table", "render_alerts", "render_sli", "render_timeseries",
    "sparkline",
    "CounterSeries", "LatencyRecorder", "TimeSeries", "cdf_points",
    "cpu_ns_per_op", "cpu_us_per_op", "ks_distance",
    "run_multiget_benchmark", "render_multiget_table", "write_bench_json",
    "run_kernel_stress", "compare_kernel_stress", "run_scale_workload",
    "profile_hotspots",
    "PERCENTILES", "run_population_arm", "compare_population",
    "run_federation_arm", "compare_parallel", "digest_mismatches",
    "assert_digest_equivalent", "profile_parallel_hotspots",
    "StitchedTrace", "walk_span_dict", "zone_traces_from_digests",
    "stitch_traces", "filter_traces", "stitched_chrome_trace",
    "write_stitched_chrome_trace",
    "load_bench_files", "bench_rows", "render_history", "perf_history",
]
