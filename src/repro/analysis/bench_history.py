"""Bench-trajectory tracker: every ``BENCH_*.json`` in one table.

Each benchmark in ``benchmarks/`` writes one JSON file at the repo root
(``BENCH_kernel.json``, ``BENCH_parallel.json``, ...) with its headline
numbers and — for the guarded ones — a recorded regression floor. The
perf record therefore lives in six disconnected files with six
different shapes. This module flattens them into one trajectory table:
benchmark → headline metric → value, floor, and margin over the floor,
so ``repro.tools perf history`` (and CI logs) can show the whole perf
posture at a glance and flag any metric sitting under its floor.

Shapes differ per benchmark, so extraction is a declarative list of
``(metric, value_path, floor_path)`` dotted paths per benchmark name,
with missing paths degrading to blank cells rather than errors — an
absent bench file or a schema drift must never break the tracker.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, List, Optional

from .reporting import render_table

# metric name -> (value dotted-path, floor dotted-path or None)
_SPECS: Dict[str, List[tuple]] = {
    "kernel": [
        ("events_per_sec", "new.events_per_sec", "floor_events_per_sec"),
        ("speedup_vs_legacy", None, None),  # computed below
    ],
    "multiget": [
        ("latency_speedup", "latency_speedup", None),
        ("engine_cpu_speedup", "engine_cpu_speedup", None),
    ],
    "parallel": [
        ("events_per_critical_sec", "run.parallel.events_per_critical_sec",
         "floor_events_per_critical_sec"),
        ("speedup_critical_path", "run.speedup_critical_path",
         "floor_speedup_critical_path"),
    ],
    "population": [
        ("events_per_sec", "fidelity.population.events_per_sec", None),
        ("ks_distance", "fidelity.comparison.ks_distance", None),
    ],
    "readthrough_herd": [
        ("fetch_reduction", "fetch_reduction", "fetch_reduction_floor"),
        ("coalescing_ratio", "coalesced.coalescing_ratio", None),
    ],
    "resize_handoff": [
        ("handoff_entries_per_sec", "handoff_entries_per_sec",
         "throughput_floor"),
        ("p99_impact", "p99_impact", None),
    ],
}


def _dig(doc: Any, path: Optional[str]) -> Optional[Any]:
    if path is None:
        return None
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def load_bench_files(root: str = ".") -> Dict[str, Dict[str, Any]]:
    """All ``BENCH_*.json`` under ``root``, keyed by their ``benchmark``
    field (falling back to the filename stem)."""
    benches: Dict[str, Dict[str, Any]] = {}
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            continue
        stem = os.path.basename(path)[len("BENCH_"):-len(".json")]
        benches[doc.get("benchmark", stem)] = doc
    return benches


def bench_rows(benches: Dict[str, Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten loaded bench docs into trajectory rows.

    Each row: ``benchmark``, ``metric``, ``value``, ``floor``,
    ``margin`` (value/floor when both known), ``ok`` (False only when a
    floored metric sits below its floor).
    """
    rows: List[Dict[str, Any]] = []
    for name in sorted(benches):
        doc = benches[name]
        specs = _SPECS.get(name, [])
        if not specs:
            # Unknown benchmark: surface any top-level floor pairs so
            # new benches appear in the table without code changes.
            specs = [(k[len("floor_"):], k[len("floor_"):], k)
                     for k in sorted(doc) if k.startswith("floor_")]
        for metric, value_path, floor_path in specs:
            if name == "kernel" and metric == "speedup_vs_legacy":
                new = _dig(doc, "new.events_per_sec")
                legacy = _dig(doc, "legacy.events_per_sec")
                value = (new / legacy) if new and legacy else None
                floor = None
            else:
                value = _dig(doc, value_path)
                floor = _dig(doc, floor_path)
            margin = None
            ok = True
            if isinstance(value, (int, float)) and \
                    isinstance(floor, (int, float)) and floor:
                margin = value / floor
                ok = value >= floor
            rows.append({"benchmark": name, "metric": metric,
                         "value": value, "floor": floor,
                         "margin": margin, "ok": ok})
    return rows


def _fmt(value: Optional[Any]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.3f}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)


def render_history(rows: List[Dict[str, Any]]) -> str:
    """The ``perf history`` table, one line per tracked metric."""
    if not rows:
        return "no BENCH_*.json files found"
    table = [[row["benchmark"], row["metric"], _fmt(row["value"]),
              _fmt(row["floor"]),
              "-" if row["margin"] is None else f"{row['margin']:.2f}x",
              "ok" if row["ok"] else "UNDER FLOOR"]
             for row in rows]
    return render_table(
        "perf trajectory",
        ["benchmark", "metric", "value", "floor", "margin", "status"],
        table)


def perf_history(root: str = ".") -> Dict[str, Any]:
    """One-call driver for ``repro.tools perf history``."""
    rows = bench_rows(load_bench_files(root))
    return {"rows": rows, "rendered": render_history(rows),
            "regressions": [r for r in rows if not r["ok"]]}


__all__ = ["load_bench_files", "bench_rows", "render_history",
           "perf_history"]
