"""Plain-text rendering of tables and series for benchmark output.

Each benchmark prints the rows/series the corresponding paper figure
plots, so `pytest benchmarks/ --benchmark-only -s` regenerates the
evaluation in textual form.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """A boxed, column-aligned table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = [f"== {title} ==", sep,
             "|" + "|".join(f" {h:<{w}} " for h, w in zip(headers, widths)) +
             "|", sep]
    for row in str_rows:
        lines.append("|" + "|".join(
            f" {c:>{w}} " for c, w in zip(row, widths)) + "|")
    lines.append(sep)
    return "\n".join(lines)


def render_series(title: str, series: Sequence[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y",
                  width: int = 48) -> str:
    """A horizontal ASCII bar chart of an (x, y) series."""
    if not series:
        return f"== {title} ==\n(no data)"
    max_y = max(y for _x, y in series) or 1.0
    lines = [f"== {title} ==  ({x_label} vs {y_label})"]
    for x, y in series:
        bar = "#" * max(0, int(y / max_y * width))
        lines.append(f"{_fmt(x):>12} | {bar:<{width}} {_fmt(y)}")
    return "\n".join(lines)


def render_percentile_lines(title: str, labeled_series, x_label: str = "t"
                            ) -> str:
    """Multiple named series, one compact row per x position."""
    lines = [f"== {title} =="]
    labels = [label for label, _s in labeled_series]
    lines.append(f"{x_label:>12}  " + "  ".join(f"{l:>12}" for l in labels))
    xs = sorted({x for _label, s in labeled_series for x, _y in s})
    by_label = {label: dict(s) for label, s in labeled_series}
    for x in xs:
        cells = []
        for label in labels:
            y = by_label[label].get(x)
            cells.append(f"{_fmt(y):>12}" if y is not None else " " * 12)
        lines.append(f"{_fmt(x):>12}  " + "  ".join(cells))
    return "\n".join(lines)


def render_metrics(snapshot, title: str = "metrics") -> str:
    """Render a ``MetricsRegistry.snapshot()`` as plain-text tables.

    Counter and gauge series share one value table; histogram series get
    a count/mean/percentile table. Families registered but with no series
    yet are listed at the end so a sparse run still shows what exists.
    """
    value_rows: List[List] = []
    hist_rows: List[List] = []
    idle: List[str] = []
    for name, family in sorted(snapshot.items()):
        series = family.get("series", [])
        if not series:
            idle.append(name)
            continue
        for s in series:
            labels = _labels_str(s.get("labels", {}))
            if family.get("kind") == "histogram":
                hist_rows.append([name, labels, s["count"], s["mean"],
                                  s["p50"], s["p90"], s["p99"], s["p99.9"]])
            else:
                value_rows.append([name, labels, s["value"]])
    parts = []
    if value_rows:
        parts.append(render_table(f"{title}: counters & gauges",
                                  ["metric", "labels", "value"], value_rows))
    if hist_rows:
        parts.append(render_table(
            f"{title}: histograms",
            ["metric", "labels", "count", "mean", "p50", "p90", "p99",
             "p99.9"], hist_rows))
    if idle:
        parts.append("(registered, no series yet: " + ", ".join(idle) + ")")
    if not parts:
        return f"== {title} ==\n(no metrics registered)"
    return "\n".join(parts)


_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """A unicode sparkline of a numeric series, resampled to ``width``."""
    vals = [v for v in values if v == v]  # drop NaNs
    if not vals:
        return "(no data)"
    if len(vals) > width:
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    top = len(_SPARK_CHARS) - 1
    return "".join(_SPARK_CHARS[int((v - lo) / span * top)] for v in vals)


def render_timeseries(title: str, series_list, width: int = 32,
                      max_rows: int = 40) -> str:
    """Scraped :class:`~repro.telemetry.timeseries.TimeSeries` rows (or
    their ``to_dict`` exports) as name / sparkline / last-value lines —
    the dashboard surface for the observability plane."""
    rows = []
    for ts in series_list[:max_rows]:
        if isinstance(ts, dict):
            points = list(ts["points"])
            name = (f"{ts['name']}{{{_labels_str(ts['labels'])}}}"
                    f".{ts['field']}")
        else:
            points = list(ts.points)
            name = f"{ts.name}{{{_labels_str(ts.labels)}}}.{ts.field}"
        last = points[-1][1] if points else float("nan")
        rows.append([name, sparkline([v for _t, v in points], width),
                     _fmt(last)])
    omitted = len(series_list) - len(rows)
    out = render_table(title, ["series", "shape", "last"], rows)
    if omitted > 0:
        out += f"\n(+{omitted} more series)"
    return out


def render_alerts(title: str, alerts: Sequence[dict]) -> str:
    """SLO alert transitions (dicts from ``AlertEvent.to_dict``)."""
    if not alerts:
        return f"== {title} ==\n(no alerts)"
    rows = [[f"{a['at']:.3f}", a["kind"], a["cell"], a["objective"],
             a["severity"], f"{a['burn_long']:.1f}",
             f"{a['burn_short']:.1f}", f"{a['factor']:g}"]
            for a in alerts]
    return render_table(title,
                        ["t (s)", "event", "cell", "objective", "severity",
                         "burn(long)", "burn(short)", "threshold"], rows)


def render_sli(title: str, sli_summary: dict) -> str:
    """The plane's per-prober SLI summary as a table."""
    rows = []
    for label, sli in sorted(sli_summary.get("probers", {}).items()):
        rows.append([label, int(sli.get("ops", 0)),
                     f"{sli.get('availability', float('nan')):.5f}",
                     f"{sli.get('latency_sli', float('nan')):.5f}"])
    table = render_table(title,
                         ["prober", "ops", "availability", "latency SLI"],
                         rows)
    return (f"{table}\n"
            f"alerts fired={sli_summary.get('alerts_fired', 0)} "
            f"active={sli_summary.get('alerts_active', 0)} "
            f"scrapes={sli_summary.get('scrapes', 0)}")


def _labels_str(labels) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)
