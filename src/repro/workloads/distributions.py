"""Workload distributions shaped on the paper's production data (§7.1).

Figure 10 shows both Ads and Geo serve mostly-small objects (typically at
most a few KB — smaller than the 5KB MTU) with a tail of larger ones; Ads
skews larger than Geo. Batch sizes are highly skewed too: Ads reaches
30-300 KV pairs at the 99.9th percentile, Geo is usually tens of segments.
"""

from __future__ import annotations

import math

from ..sim import MixtureSizeDistribution, RandomStream


def ads_object_sizes(stream: RandomStream) -> MixtureSizeDistribution:
    """Ads: ~1KB typical, visible tail into tens of KB."""
    return MixtureSizeDistribution(
        stream,
        components=[
            (0.50, math.log(700), 0.80),     # topic metadata
            (0.40, math.log(2500), 0.70),    # creative payloads
            (0.10, math.log(30000), 0.90),   # large composite entries
        ],
        # The tail is clipped to what one slab can hold (BackendConfig
        # defaults); production Ads values run larger but are similarly
        # bounded by the deployment's largest size class.
        min_size=64, max_size=200 * 1024)


def geo_object_sizes(stream: RandomStream) -> MixtureSizeDistribution:
    """Geo: compact road-segment summaries, a few hundred bytes typical."""
    return MixtureSizeDistribution(
        stream,
        components=[
            (0.65, math.log(180), 0.55),     # per-segment utilization
            (0.30, math.log(900), 0.65),     # busier segments
            (0.05, math.log(6000), 0.90),    # aggregate records
        ],
        min_size=32, max_size=1 << 18)


class BatchSizeSampler:
    """Lognormal batch sizes clipped to a range."""

    def __init__(self, stream: RandomStream, median: float, sigma: float,
                 lo: int = 1, hi: int = 400):
        self._stream = stream
        self._mu = math.log(median)
        self._sigma = sigma
        self.lo = lo
        self.hi = hi

    def sample(self) -> int:
        draw = int(round(self._stream.lognormal(self._mu, self._sigma)))
        return max(self.lo, min(self.hi, draw))


def ads_batch_sizes(stream: RandomStream) -> BatchSizeSampler:
    """Highly batched: p99.9 lands in the 30-300 range (§7.1)."""
    return BatchSizeSampler(stream, median=8, sigma=1.15, lo=1, hi=300)


def geo_batch_sizes(stream: RandomStream) -> BatchSizeSampler:
    """Tens of road segments per lookup (§7.1)."""
    return BatchSizeSampler(stream, median=20, sigma=0.45, lo=1, hi=100)


def diurnal_rate(base_rate: float, amplitude: float = 0.5,
                 period: float = 86400.0, phase: float = 0.0):
    """A day-shaped rate multiplier: rate(t) in [base*(1-a), base*(1+a)].

    Geo's GET traffic varies ~3x over a day (§7.1); amplitude=0.5 gives
    exactly a 3x peak-to-trough swing.
    """

    def rate(t: float) -> float:
        return base_rate * (1.0 + amplitude *
                            math.sin(2 * math.pi * (t + phase) / period))

    return rate
