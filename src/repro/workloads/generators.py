"""Synthetic load generation against a CliqueMap cell.

Two modes:

* **open loop** — batches arrive by a Poisson process at an offered rate
  (optionally time-varying, e.g. diurnal); queueing and overload behavior
  emerge naturally;
* **closed loop** — each worker issues the next batch as soon as the
  previous completes, measuring peak sustainable op rate (Fig 6a).

All results land in :mod:`repro.analysis` recorders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..analysis import LatencyRecorder, TimeSeries
from ..core import CliqueMapClient, GetStatus, SetStatus
from ..sim import RandomStream, Simulator, ZipfSampler


class KeySpace:
    """A fixed corpus of keys with a zipf popularity distribution."""

    def __init__(self, stream: RandomStream, num_keys: int,
                 prefix: bytes = b"key", zipf_s: float = 0.99,
                 cache_ranks: int = 65536):
        self.num_keys = num_keys
        self.prefix = prefix
        self._sampler = ZipfSampler(stream, num_keys, zipf_s)
        # Zipf traffic revisits a small head of the corpus constantly;
        # cache those encoded key bytes instead of re-rendering per
        # draw. The cache is bounded to the head (``cache_ranks``
        # entries) — tail keys render on demand, so a 10^7-key
        # population run never holds every encoded key in memory.
        self.cache_ranks = min(num_keys, max(0, cache_ranks))
        self._key_cache: dict = {}

    def key(self, i: int) -> bytes:
        if i >= self.cache_ranks:
            return self.prefix + b"-%d" % i
        cached = self._key_cache.get(i)
        if cached is None:
            cached = self._key_cache[i] = self.prefix + b"-%d" % i
        return cached

    def sample_key(self) -> bytes:
        return self.key(self._sampler.sample())

    def sample_keys(self, n: int) -> List[bytes]:
        """Draw ``n`` keys in one bulk pass over the zipf sampler."""
        key = self.key
        return [key(r) for r in self._sampler.sample_n(n)]

    def all_keys(self) -> List[bytes]:
        return [self.key(i) for i in range(self.num_keys)]


def populate(client: CliqueMapClient, keyspace: KeySpace, size_dist,
             count: Optional[int] = None,
             parallelism: int = 16) -> Generator:
    """Pre-load the corpus; returns the number of keys installed."""
    sim = client.sim
    # Render only the keys being installed: ``all_keys()[:count]`` would
    # materialize the full corpus (10^6+ keys in population runs) to
    # keep the first ``count``.
    limit = keyspace.num_keys if count is None \
        else min(count, keyspace.num_keys)
    keys = [keyspace.key(i) for i in range(limit)]
    installed = [0]

    def worker(chunk):
        for key in chunk:
            value = bytes(size_dist.sample()) if hasattr(size_dist, "sample") \
                else bytes(size_dist)
            result = yield from client.set(key, value)
            if result.status is SetStatus.APPLIED:
                installed[0] += 1

    chunks = [keys[i::parallelism] for i in range(parallelism)]
    procs = [sim.process(worker(c)) for c in chunks if c]
    yield sim.all_of(procs)
    return installed[0]


@dataclass
class WorkloadMetrics:
    """Everything a workload run records."""

    get_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("get"))
    set_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("set"))
    get_timeline: Optional[TimeSeries] = None
    set_timeline: Optional[TimeSeries] = None
    gets: int = 0
    hits: int = 0
    sets: int = 0
    get_errors: int = 0
    # Offered-vs-delivered accounting (key-ops). ``offered`` counts every
    # op an open-loop/population arrival wanted to issue; ``shed`` the
    # ops dropped at the outstanding cap; ``thinned`` the ops a
    # population run skipped by op-sampling (statistically delivered,
    # not driven). Without these, overload makes the offered rate
    # unmeasurable — sheds used to vanish silently.
    offered: int = 0
    shed: int = 0
    thinned: int = 0

    def with_timeline(self, bin_width: float) -> "WorkloadMetrics":
        self.get_timeline = TimeSeries(bin_width, "get-latency")
        self.set_timeline = TimeSeries(bin_width, "set-latency")
        return self

    @property
    def hit_rate(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0


class LoadGenerator:
    """Drives GET/SET traffic from a set of clients."""

    def __init__(self, sim: Simulator, clients: List[CliqueMapClient],
                 keyspace: KeySpace, stream: RandomStream,
                 metrics: Optional[WorkloadMetrics] = None,
                 max_outstanding_per_client: int = 64):
        self.sim = sim
        self.clients = clients
        self.keyspace = keyspace
        self.stream = stream
        self.metrics = metrics or WorkloadMetrics()
        self.max_outstanding = max_outstanding_per_client
        # Sheds land both in WorkloadMetrics and on the cell's registry
        # (clients share the cell registry), so soaks and the
        # observability plane see them alongside every other reaction.
        self._m_shed = clients[0].metrics.counter(
            "cliquemap_loadgen_shed_total",
            "Offered ops dropped because a client hit its outstanding "
            "cap, by generator mode") if clients else None

    def _count_shed(self, ops: int, mode: str) -> None:
        self.metrics.shed += ops
        if self._m_shed is not None:
            self._m_shed.labels(mode=mode).inc(ops)

    # -- GET traffic ----------------------------------------------------------

    def start_open_loop_gets(self, rate_per_client,
                             duration: float,
                             batch_sampler=None) -> List:
        """Poisson arrivals at ``rate_per_client`` ops/sec (callable ok)."""
        procs = []
        for i, client in enumerate(self.clients):
            stream = self.stream.child(f"get-arrivals-{i}")
            procs.append(self.sim.process(self._open_get_loop(
                client, rate_per_client, duration, batch_sampler, stream)))
        return procs

    def _open_get_loop(self, client, rate, duration, batch_sampler,
                       stream) -> Generator:
        end = self.sim.now + duration
        outstanding = [0]
        while self.sim.now < end:
            now_rate = rate(self.sim.now) if callable(rate) else rate
            batch = batch_sampler.sample() if batch_sampler else 1
            interval = batch / max(now_rate, 1e-9)
            yield self.sim.timeout(stream.expovariate(1.0 / interval))
            self.metrics.offered += batch
            if outstanding[0] >= self.max_outstanding:
                # Shed rather than queue unboundedly — but count it, or
                # the offered-vs-delivered gap is unmeasurable.
                self._count_shed(batch, "open")
                continue
            outstanding[0] += 1
            proc = self.sim.process(
                self._one_get_batch(client, batch, outstanding))
            proc.defused = True

    def _one_get_batch(self, client, batch: int, outstanding) -> Generator:
        try:
            keys = self.keyspace.sample_keys(batch)
            start = self.sim.now
            results = yield from client.get_multi(keys)
            batch_latency = self.sim.now - start
            for result in results:
                self._record_get(result, batch_latency)
        finally:
            outstanding[0] -= 1

    def start_population_gets(self, num_clients: int, rate_per_client,
                              duration: float, batch_sampler=None,
                              op_sample_rate: float = 1.0,
                              max_outstanding_per_client: Optional[int]
                              = None) -> List:
        """Aggregate-population mode: model ``num_clients`` clients on
        the existing (small) client pool via Poisson superposition.

        Each real client becomes a *driver* for an equal slice of the
        modeled population. See :mod:`repro.workloads.population` for
        the model and its fidelity argument; with ``num_clients`` equal
        to the pool size (one modeled client per driver) the arrival
        process — and therefore the whole run — is identical to
        :meth:`start_open_loop_gets` on the same seed.
        """
        from .population import ClientPopulation, PopulationConfig
        population = ClientPopulation(self, PopulationConfig(
            num_clients=num_clients, rate_per_client=rate_per_client,
            duration=duration, op_sample_rate=op_sample_rate,
            max_outstanding_per_client=self.max_outstanding
            if max_outstanding_per_client is None
            else max_outstanding_per_client))
        return population.start(batch_sampler)

    def start_closed_loop_gets(self, workers_per_client: int,
                               duration: float,
                               batch_sampler=None) -> List:
        """Max-rate GETs: each worker re-issues immediately (Fig 6a)."""
        procs = []
        for client in self.clients:
            for _w in range(workers_per_client):
                procs.append(self.sim.process(
                    self._closed_get_loop(client, duration, batch_sampler)))
        return procs

    def _closed_get_loop(self, client, duration, batch_sampler) -> Generator:
        end = self.sim.now + duration
        while self.sim.now < end:
            batch = batch_sampler.sample() if batch_sampler else 1
            keys = self.keyspace.sample_keys(batch)
            start = self.sim.now
            results = yield from client.get_multi(keys)
            batch_latency = self.sim.now - start
            for result in results:
                self._record_get(result, batch_latency)

    def _record_get(self, result, batch_latency: float) -> None:
        metrics = self.metrics
        metrics.gets += 1
        if result.status is GetStatus.HIT:
            metrics.hits += 1
        elif result.status is GetStatus.ERROR:
            metrics.get_errors += 1
        metrics.get_latency.record(result.latency)
        if metrics.get_timeline is not None:
            metrics.get_timeline.record(self.sim.now, result.latency)

    # -- SET traffic ---------------------------------------------------------

    def start_open_loop_sets(self, rate_per_client, duration: float,
                             size_dist) -> List:
        procs = []
        for i, client in enumerate(self.clients):
            stream = self.stream.child(f"set-arrivals-{i}")
            procs.append(self.sim.process(self._open_set_loop(
                client, rate_per_client, duration, size_dist, stream)))
        return procs

    def _open_set_loop(self, client, rate, duration, size_dist,
                       stream) -> Generator:
        end = self.sim.now + duration
        while self.sim.now < end:
            now_rate = rate(self.sim.now) if callable(rate) else rate
            yield self.sim.timeout(stream.expovariate(max(now_rate, 1e-9)))
            proc = self.sim.process(self._one_set(client, size_dist))
            proc.defused = True

    def _one_set(self, client, size_dist) -> Generator:
        key = self.keyspace.sample_key()
        value = bytes(size_dist.sample()) if hasattr(size_dist, "sample") \
            else bytes(size_dist)
        result = yield from client.set(key, value)
        self.metrics.sets += 1
        self.metrics.set_latency.record(result.latency)
        if self.metrics.set_timeline is not None:
            self.metrics.set_timeline.record(self.sim.now, result.latency)
