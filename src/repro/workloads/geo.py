"""The Geo-like serving workload (§7.1, Fig 9).

Road-traffic predictions keyed by road segment. GET traffic is strongly
diurnal (~3x swing over a day) and batched in tens of segments; a steady
background SET rate from separate updater jobs keeps the model fresh.
The paper's takeaway: despite the 3x GET-rate swing, tail latency varies
minimally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import Cell, CellSpec, ReplicationMode
from ..sim import RandomStream
from .distributions import diurnal_rate, geo_batch_sizes, geo_object_sizes
from .generators import KeySpace, LoadGenerator, WorkloadMetrics, populate


@dataclass
class GeoScenario:
    """Parameters for a Geo-shaped run (scaled down from production)."""

    num_shards: int = 6
    num_clients: int = 6
    num_updaters: int = 2
    num_keys: int = 2000
    base_get_rate_per_client: float = 2000.0
    diurnal_amplitude: float = 0.5          # => 3x peak-to-trough
    day_length: float = 8.0                 # a compressed "day" in sim-secs
    update_rate_per_client: float = 150.0   # steady model refresh
    duration: float = 16.0                  # two compressed days
    seed: int = 7


class GeoWorkload:
    """Builds a cell and drives Geo-shaped diurnal traffic at it."""

    def __init__(self, scenario: GeoScenario = None, cell: Cell = None):
        self.scenario = scenario or GeoScenario()
        self.cell = cell or Cell(CellSpec(
            mode=ReplicationMode.R3_2,
            num_shards=self.scenario.num_shards, transport="pony"))
        self.sim = self.cell.sim
        stream = RandomStream(self.scenario.seed, "geo")
        self.keyspace = KeySpace(stream.child("keys"),
                                 self.scenario.num_keys, prefix=b"segment")
        self.sizes = geo_object_sizes(stream.child("sizes"))
        self.batches = geo_batch_sizes(stream.child("batches"))
        self.stream = stream
        self.readers = [self.cell.connect_client()
                        for _ in range(self.scenario.num_clients)]
        self.updaters = [self.cell.connect_client()
                         for _ in range(self.scenario.num_updaters)]
        self.metrics = WorkloadMetrics().with_timeline(
            bin_width=self.scenario.duration / 24)
        self.reader_gen = LoadGenerator(self.sim, self.readers, self.keyspace,
                                        stream.child("reads"), self.metrics)
        self.updater_gen = LoadGenerator(self.sim, self.updaters,
                                         self.keyspace,
                                         stream.child("writes"), self.metrics)

    def preload(self) -> None:
        self.sim.run(until=self.sim.process(
            populate(self.readers[0], self.keyspace, self.sizes)))

    def run(self) -> WorkloadMetrics:
        scenario = self.scenario
        rate = diurnal_rate(scenario.base_get_rate_per_client,
                            amplitude=scenario.diurnal_amplitude,
                            period=scenario.day_length,
                            phase=scenario.day_length / 4)
        procs: List = []
        procs += self.reader_gen.start_open_loop_gets(
            rate, scenario.duration, self.batches)
        procs += self.updater_gen.start_open_loop_sets(
            scenario.update_rate_per_client, scenario.duration, self.sizes)
        self.sim.run(until=self.sim.all_of(procs))
        return self.metrics
