"""Aggregate client populations: statistical load at production scale.

The north star is heavy traffic from *millions* of users, but the kernel
retires ~1.3M events/sec on one core (BENCH_kernel.json) — per-client
event loops top out around 10^3 clients, not 10^6. This module crosses
that gap the way rack-scale simulators do: model the population
*statistically* instead of per-actor, using the paper's §7.1 production
distributions (op rate, batch size, object size) that
:mod:`repro.workloads.distributions` already encodes.

**The superposition argument.** N independent clients, each issuing ops
as a Poisson process of rate r, are indistinguishable *at the cell* from
one arrival process of rate N*r: the superposition of independent
Poisson processes is Poisson in their summed rate. A
:class:`ClientPopulation` therefore drives the cell from a small pool of
D *driver* processes (real :class:`~repro.core.CliqueMapClient`\\ s),
each presenting the aggregate arrival process of N/D modeled clients.
Three per-client behaviors do not aggregate and are restored per draw:

* **identity** — each arrival samples which modeled client issued it,
  so per-client outstanding caps bind exactly as they would with real
  clients (a hot client sheds; the population does not borrow capacity
  across identities);
* **shed accounting** — arrivals dropped at a modeled client's cap are
  counted (``WorkloadMetrics.shed`` + the
  ``cliquemap_loadgen_shed_total`` counter), keeping offered vs
  delivered measurable;
* **op thinning** — at extreme offered loads (10^7+ ops) even aggregate
  arrival simulation is too hot to *drive* every op end-to-end.
  ``op_sample_rate`` p drives each surviving arrival with probability p
  and counts the rest as ``thinned``. Thinning a Poisson process yields
  a Poisson process of rate p*lambda, and sampled ops draw keys/batches
  from the same distributions, so latency percentiles and hit rates are
  unbiased estimates of the full population's (the validation harness
  in :mod:`repro.analysis.population` quantifies the tolerance).

**Fidelity boundary.** Quarantine/backoff state lives in the D driver
clients, not in N per-modeled-client scoreboards: a quarantine entered
by one driver shades N/D modeled clients at once. That matches
production fleets where clients share per-host channel state, and is the
price of the aggregation; runs that need per-client quarantine fidelity
should lower N/D (more drivers).

**Honesty template.** With one modeled client per driver (N == D, no
thinning) the arrival loop consumes the *identical* random-stream draw
sequence as :meth:`LoadGenerator.start_open_loop_gets`, so a
population-of-1 run reproduces a one-real-client run exactly — the same
seed-for-seed equivalence check PR 4 used to prove the kernel fast path
honest (see ``tests/integration/test_population.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..core import CliqueMapError


@dataclass
class PopulationConfig:
    """Shape of one modeled client population.

    ``rate_per_client`` is offered key-ops/sec per modeled client and
    may be a callable of sim-time (e.g.
    :func:`~repro.workloads.distributions.diurnal_rate` at per-client
    scale). ``op_sample_rate`` in (0, 1] drives that fraction of
    surviving arrivals end-to-end and counts the rest as thinned.
    """

    num_clients: int
    rate_per_client: object
    duration: float
    op_sample_rate: float = 1.0
    max_outstanding_per_client: int = 64

    def __post_init__(self):
        if self.num_clients < 1:
            raise CliqueMapError(
                f"population needs num_clients >= 1, got "
                f"{self.num_clients!r}")
        if not callable(self.rate_per_client) \
                and not self.rate_per_client > 0:
            raise CliqueMapError(
                f"rate_per_client must be > 0, got "
                f"{self.rate_per_client!r}")
        if self.duration <= 0:
            raise CliqueMapError(
                f"duration must be > 0, got {self.duration!r}")
        if not 0.0 < self.op_sample_rate <= 1.0:
            raise CliqueMapError(
                f"op_sample_rate must be in (0, 1], got "
                f"{self.op_sample_rate!r}")
        if self.max_outstanding_per_client < 1:
            raise CliqueMapError(
                f"max_outstanding_per_client must be >= 1, got "
                f"{self.max_outstanding_per_client!r}")


class ClientPopulation:
    """N modeled clients driven by a generator's (small) client pool."""

    def __init__(self, generator, config: PopulationConfig):
        self.generator = generator
        self.config = config
        drivers = len(generator.clients)
        if drivers < 1:
            raise CliqueMapError("population needs at least one driver "
                                 "client in the generator pool")
        if drivers > config.num_clients:
            raise CliqueMapError(
                f"{drivers} drivers for {config.num_clients} modeled "
                f"clients; use at most one driver per modeled client")

    def start(self, batch_sampler=None) -> List:
        """Spawn one driver process per pool client; returns the procs."""
        generator = self.generator
        config = self.config
        drivers = len(generator.clients)
        base, extra = divmod(config.num_clients, drivers)
        procs = []
        id_base = 0
        for i, client in enumerate(generator.clients):
            slice_size = base + (1 if i < extra else 0)
            stream = generator.stream.child(f"get-arrivals-{i}")
            procs.append(generator.sim.process(self._driver_loop(
                client, slice_size, id_base, batch_sampler, stream)))
            id_base += slice_size
        return procs

    def _driver_loop(self, client, slice_size: int, id_base: int,
                     batch_sampler, stream) -> Generator:
        generator = self.generator
        config = self.config
        sim = generator.sim
        metrics = generator.metrics
        rate = config.rate_per_client
        rate_fn = rate if callable(rate) else None
        sample_rate = config.op_sample_rate
        cap = config.max_outstanding_per_client
        end = sim.now + config.duration
        # In-flight batches per modeled client id. Entries are dropped
        # at zero, so this holds O(in-flight) ids, never O(N).
        outstanding: dict = {}
        while sim.now < end:
            per_client = rate_fn(sim.now) if rate_fn is not None else rate
            batch = batch_sampler.sample() if batch_sampler else 1
            # Superposition: the slice's aggregate offered key-rate is
            # slice_size * per-client rate; batches of size b arrive at
            # aggregate_rate / b. Same arithmetic as the open loop, so
            # a slice of one replays it draw for draw.
            interval = batch / max(per_client * slice_size, 1e-9)
            yield sim.timeout(stream.expovariate(1.0 / interval))
            metrics.offered += batch
            # Identity restores per-client semantics; the draw is
            # skipped for a slice of one to keep the open-loop draw
            # sequence (the population-of-1 equivalence check).
            ident = id_base if slice_size == 1 \
                else id_base + stream.randint(0, slice_size - 1)
            if outstanding.get(ident, 0) >= cap:
                generator._count_shed(batch, "population")
                continue
            if sample_rate < 1.0 and stream.random() >= sample_rate:
                metrics.thinned += batch
                continue
            outstanding[ident] = outstanding.get(ident, 0) + 1
            proc = sim.process(self._one_batch(client, ident, batch,
                                               outstanding))
            proc.defused = True

    def _one_batch(self, client, ident: int, batch: int,
                   outstanding: dict) -> Generator:
        generator = self.generator
        try:
            keys = generator.keyspace.sample_keys(batch)
            start = generator.sim.now
            results = yield from client.get_multi(keys)
            batch_latency = generator.sim.now - start
            for result in results:
                generator._record_get(result, batch_latency)
        finally:
            left = outstanding[ident] - 1
            if left:
                outstanding[ident] = left
            else:
                del outstanding[ident]


__all__ = ["ClientPopulation", "PopulationConfig"]
