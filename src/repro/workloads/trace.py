"""Trace-driven workloads: record, save, load, and replay op streams.

The paper's production sections (§7.1) are measurements of real traffic;
a downstream user reproducing their own workload wants to feed their own
trace. This module defines a compact line-oriented trace format::

    # time_s op key [size_or_batch]
    0.000125 get topic-42 3
    0.000300 set topic-7 2048
    0.001100 erase topic-9

with a :class:`TraceRecorder` (wraps generators to capture what they
did), file I/O, a synthesizer (build traces from the Ads/Geo
distributions), and a :class:`TraceReplayer` that re-issues the ops
against any cell with the original timing (optionally time-scaled).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Generator, List, Optional, TextIO

from ..analysis import LatencyRecorder
from ..core import CliqueMapClient, GetStatus, SetStatus
from ..sim import RandomStream


@dataclass(frozen=True)
class TraceOp:
    """One operation in a trace."""

    time: float
    op: str            # get | set | erase
    key: bytes
    arg: int = 0       # batch size for gets, value bytes for sets

    def to_line(self) -> str:
        return f"{self.time:.6f} {self.op} {self.key.decode('latin-1')} " \
               f"{self.arg}"

    @classmethod
    def from_line(cls, line: str) -> Optional["TraceOp"]:
        line = line.strip()
        if not line or line.startswith("#"):
            return None
        parts = line.split()
        if len(parts) < 3:
            raise ValueError(f"malformed trace line: {line!r}")
        time, op, key = float(parts[0]), parts[1], parts[2]
        if op not in ("get", "set", "erase"):
            raise ValueError(f"unknown trace op {op!r}")
        arg = int(parts[3]) if len(parts) > 3 else 0
        return cls(time=time, op=op, key=key.encode("latin-1"), arg=arg)


class Trace:
    """An ordered list of :class:`TraceOp` with file round-tripping."""

    def __init__(self, ops: Optional[List[TraceOp]] = None):
        self.ops = ops or []

    def append(self, op: TraceOp) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    @property
    def duration(self) -> float:
        return self.ops[-1].time - self.ops[0].time if self.ops else 0.0

    def dump(self, fp: TextIO) -> None:
        fp.write("# time_s op key arg\n")
        for op in self.ops:
            fp.write(op.to_line() + "\n")

    def dumps(self) -> str:
        buf = io.StringIO()
        self.dump(buf)
        return buf.getvalue()

    @classmethod
    def load(cls, fp: TextIO) -> "Trace":
        ops = []
        for line in fp:
            op = TraceOp.from_line(line)
            if op is not None:
                ops.append(op)
        ops.sort(key=lambda o: o.time)
        return cls(ops)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        return cls.load(io.StringIO(text))


class TraceRecorder:
    """Wraps a client; records every op it forwards."""

    def __init__(self, client: CliqueMapClient):
        self.client = client
        self.trace = Trace()

    def get(self, key: bytes, **kwargs) -> Generator:
        self.trace.append(TraceOp(self.client.sim.now, "get", key, 1))
        return (yield from self.client.get(key, **kwargs))

    def set(self, key: bytes, value: bytes, **kwargs) -> Generator:
        self.trace.append(TraceOp(self.client.sim.now, "set", key,
                                  len(value)))
        return (yield from self.client.set(key, value, **kwargs))

    def erase(self, key: bytes, **kwargs) -> Generator:
        self.trace.append(TraceOp(self.client.sim.now, "erase", key))
        return (yield from self.client.erase(key, **kwargs))


def synthesize_trace(stream: RandomStream, num_keys: int, ops: int,
                     get_fraction: float = 0.95,
                     rate: float = 10000.0,
                     size_dist=None, zipf_s: float = 0.99) -> Trace:
    """Build a synthetic trace with Poisson arrivals and zipf keys."""
    from ..sim import ZipfSampler
    sampler = ZipfSampler(stream.child("keys"), num_keys, zipf_s)
    trace = Trace()
    t = 0.0
    for _ in range(ops):
        t += stream.expovariate(rate)
        key = b"trace-key-%d" % sampler.sample()
        if stream.bernoulli(get_fraction):
            trace.append(TraceOp(t, "get", key, 1))
        else:
            size = size_dist.sample() if size_dist is not None else 512
            trace.append(TraceOp(t, "set", key, size))
    return trace


@dataclass
class ReplayReport:
    """What happened when a trace was replayed."""

    gets: int = 0
    hits: int = 0
    sets: int = 0
    erases: int = 0
    errors: int = 0
    get_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    duration: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.gets if self.gets else 0.0


class TraceReplayer:
    """Re-issues a trace against a client with the original timing."""

    def __init__(self, client: CliqueMapClient, trace: Trace,
                 time_scale: float = 1.0,
                 fill_missing_sets: bool = True):
        self.client = client
        self.trace = trace
        self.time_scale = time_scale
        self.fill_missing_sets = fill_missing_sets
        self.report = ReplayReport()

    def replay(self) -> Generator:
        """Drive the whole trace; returns the :class:`ReplayReport`."""
        sim = self.client.sim
        if not self.trace.ops:
            return self.report
        started = sim.now
        base = self.trace.ops[0].time
        for op in self.trace.ops:
            due = started + (op.time - base) * self.time_scale
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            yield from self._issue(op)
        self.report.duration = sim.now - started
        return self.report

    def _issue(self, op: TraceOp) -> Generator:
        report = self.report
        if op.op == "get":
            result = yield from self.client.get(op.key)
            report.gets += 1
            report.get_latency.record(result.latency)
            if result.status is GetStatus.HIT:
                report.hits += 1
            elif result.status is GetStatus.ERROR:
                report.errors += 1
            elif self.fill_missing_sets:
                # Cache-miss fill, as a real serving stack would do.
                yield from self.client.set(op.key, bytes(max(op.arg, 1) *
                                                         128))
        elif op.op == "set":
            result = yield from self.client.set(op.key, bytes(op.arg))
            report.sets += 1
            if result.status is not SetStatus.APPLIED:
                report.errors += 1
        elif op.op == "erase":
            yield from self.client.erase(op.key)
            report.erases += 1
