"""The Ads-like serving workload (§7.1, Fig 8).

Advertising data keyed by topic, fetched on demand during auctions from
an R=3.2 cell. Response time is revenue-critical; fetches are highly
batched (30-300 KV pairs at the 99.9th percentile), which makes the
*client* the bottleneck due to response incast. A steady write rate is
joined by periodic *backfill* bursts that refresh slices of the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from ..core import Cell, CellSpec, ReplicationMode, SetStatus
from ..sim import RandomStream
from .distributions import ads_batch_sizes, ads_object_sizes
from .generators import KeySpace, LoadGenerator, WorkloadMetrics, populate


@dataclass
class AdsScenario:
    """Parameters for an Ads-shaped run (scaled down from production)."""

    num_shards: int = 6
    num_clients: int = 8
    num_keys: int = 2000
    get_rate_per_client: float = 2000.0   # ops/sec offered
    write_rate_per_client: float = 40.0   # steady corpus updates
    backfill_period: float = 2.0          # seconds between backfill bursts
    backfill_fraction: float = 0.05       # slice of corpus per burst
    duration: float = 10.0
    seed: int = 42


class AdsWorkload:
    """Builds a cell and drives Ads-shaped traffic at it."""

    def __init__(self, scenario: AdsScenario = None, cell: Cell = None):
        self.scenario = scenario or AdsScenario()
        self.cell = cell or Cell(CellSpec(
            mode=ReplicationMode.R3_2,
            num_shards=self.scenario.num_shards, transport="pony"))
        self.sim = self.cell.sim
        stream = RandomStream(self.scenario.seed, "ads")
        self.keyspace = KeySpace(stream.child("keys"),
                                 self.scenario.num_keys, prefix=b"topic")
        self.sizes = ads_object_sizes(stream.child("sizes"))
        self.batches = ads_batch_sizes(stream.child("batches"))
        self.stream = stream
        self.clients = [self.cell.connect_client()
                        for _ in range(self.scenario.num_clients)]
        self.metrics = WorkloadMetrics().with_timeline(
            bin_width=self.scenario.duration / 20)
        self.generator = LoadGenerator(self.sim, self.clients, self.keyspace,
                                       stream.child("load"), self.metrics)
        self.backfill_sets = 0

    def preload(self) -> None:
        self.sim.run(until=self.sim.process(
            populate(self.clients[0], self.keyspace, self.sizes)))

    def run(self) -> WorkloadMetrics:
        """Drive the full scenario to completion."""
        scenario = self.scenario
        procs: List = []
        procs += self.generator.start_open_loop_gets(
            scenario.get_rate_per_client, scenario.duration, self.batches)
        procs += self.generator.start_open_loop_sets(
            scenario.write_rate_per_client, scenario.duration, self.sizes)
        procs.append(self.sim.process(self._backfill_loop()))
        self.sim.run(until=self.sim.all_of(procs))
        return self.metrics

    def _backfill_loop(self) -> Generator:
        """Bulk refresh of a corpus slice, like the paper's backfill SETs."""
        scenario = self.scenario
        client = self.clients[-1]
        end = self.sim.now + scenario.duration
        slice_size = max(1, int(scenario.num_keys *
                                scenario.backfill_fraction))
        cursor = 0
        while self.sim.now + scenario.backfill_period < end:
            yield self.sim.timeout(scenario.backfill_period)
            for i in range(cursor, cursor + slice_size):
                key = self.keyspace.key(i % scenario.num_keys)
                value = bytes(self.sizes.sample())
                result = yield from client.set(key, value)
                if result.status is SetStatus.APPLIED:
                    self.backfill_sets += 1
            cursor += slice_size
