"""Synthetic workloads: generators plus Ads- and Geo-shaped scenarios."""

from .ads import AdsScenario, AdsWorkload
from .distributions import (BatchSizeSampler, ads_batch_sizes,
                            ads_object_sizes, diurnal_rate, geo_batch_sizes,
                            geo_object_sizes)
from .generators import KeySpace, LoadGenerator, WorkloadMetrics, populate
from .geo import GeoScenario, GeoWorkload
from .population import ClientPopulation, PopulationConfig
from .trace import (ReplayReport, Trace, TraceOp, TraceRecorder,
                    TraceReplayer, synthesize_trace)

__all__ = [
    "AdsScenario", "AdsWorkload", "GeoScenario", "GeoWorkload",
    "BatchSizeSampler", "ads_batch_sizes", "ads_object_sizes",
    "diurnal_rate", "geo_batch_sizes", "geo_object_sizes",
    "ClientPopulation", "PopulationConfig",
    "KeySpace", "LoadGenerator", "WorkloadMetrics", "populate",
    "ReplayReport", "Trace", "TraceOp", "TraceRecorder", "TraceReplayer",
    "synthesize_trace",
]
