"""Windowed SLOs with multi-window burn-rate alerting.

The standard SRE construction: an objective declares a *good-events*
counter and a *total-events* counter plus a target ratio (e.g. 99%
availability). The error budget is ``1 - target``; the **burn rate**
over a window is ``error_ratio / (1 - target)`` — burn 1.0 spends the
budget exactly at the sustainable pace, burn 10 spends it 10x too fast.

Alert rules pair a long and a short window: the long window supplies
confidence (enough events that the ratio is meaningful), the short
window supplies recency (the alert clears quickly once the system
recovers, and a long-ago blip cannot page you now). A rule fires only
when *both* windows exceed its burn factor.

The :class:`SloEngine` evaluates every objective against a
:class:`~repro.telemetry.timeseries.Scraper` on each scrape tick (it is
registered as a scraper observer), emitting sim-timestamped
:class:`AlertEvent` records on fire and resolve transitions and counting
``cliquemap_slo_alerts_total{cell,objective,severity}``.

All windows are **simulated seconds** — at this repo's sim scale a full
workload lasts single-digit seconds, so windows are fractions of a
second rather than the hours a wall-clock deployment would use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..telemetry import NULL_FLIGHT
from ..telemetry.timeseries import Scraper


@dataclass(frozen=True)
class MetricTerm:
    """One counter selection: a name plus a label-subset filter."""

    name: str
    labels: Mapping[str, str] = field(default_factory=dict)
    fieldname: str = "value"

    def increase(self, scraper: Scraper, window: float, at: float) -> float:
        return scraper.increase(self.name, window, at, field=self.fieldname,
                                **dict(self.labels))


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window burn-rate rule: fire when both windows burn hot."""

    long_window: float
    short_window: float
    factor: float            # burn-rate threshold, e.g. 14.4 or 6.0
    severity: str = "page"

    def validate(self) -> None:
        if not (0 < self.short_window <= self.long_window):
            raise ValueError(
                "need 0 < short_window <= long_window, got "
                f"{self.short_window!r} / {self.long_window!r}")
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor!r}")


@dataclass
class SloObjective:
    """A good/total ratio target for one cell, with its alert rules."""

    name: str                       # e.g. "availability"
    cell: str
    target: float                   # e.g. 0.99 -> 1% error budget
    good: MetricTerm
    total: MetricTerm
    windows: List[BurnWindow] = field(default_factory=list)
    # Below this many events in the long window the ratio is noise: a
    # single failed op out of two must not page.
    min_events: float = 10.0

    def validate(self) -> None:
        if not (0.0 < self.target < 1.0):
            raise ValueError(
                f"target must be in (0, 1), got {self.target!r}")
        if not self.windows:
            raise ValueError(f"objective {self.name!r} has no alert rules")
        for w in self.windows:
            w.validate()

    def burn_rate(self, scraper: Scraper, window: float, at: float
                  ) -> Tuple[float, float]:
        """(burn rate, total events) over ``[at - window, at]``."""
        total = self.total.increase(scraper, window, at)
        if total <= 0:
            return 0.0, 0.0
        good = self.good.increase(scraper, window, at)
        error_ratio = max(0.0, 1.0 - good / total)
        return error_ratio / (1.0 - self.target), total


@dataclass
class AlertEvent:
    """One alert transition, stamped in simulated time."""

    at: float
    kind: str                # "fire" | "resolve"
    objective: str
    cell: str
    severity: str
    burn_long: float
    burn_short: float
    window: BurnWindow

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at": self.at, "kind": self.kind, "objective": self.objective,
            "cell": self.cell, "severity": self.severity,
            "burn_long": self.burn_long, "burn_short": self.burn_short,
            "long_window": self.window.long_window,
            "short_window": self.window.short_window,
            "factor": self.window.factor,
        }


def default_objectives(cell_name: str,
                       availability_target: float = 0.99,
                       latency_target: float = 0.90,
                       long_window: float = 0.4,
                       short_window: float = 0.1,
                       fire_factor: float = 2.0) -> List[SloObjective]:
    """The plane's stock objectives over the prober counter families.

    Availability: probe ops with ``result="ok"`` over all probe ops.
    Latency: probe ops classified ``fast`` over all classified ops.
    Windows default to sim-scale fractions of a second (see module
    docstring).
    """
    windows = [BurnWindow(long_window, short_window, fire_factor, "page")]
    probe = "cliquemap_probe_ops_total"
    latency = "cliquemap_probe_latency_class_total"
    return [
        SloObjective(
            name="availability", cell=cell_name,
            target=availability_target,
            good=MetricTerm(probe, {"cell": cell_name, "result": "ok"}),
            total=MetricTerm(probe, {"cell": cell_name}),
            windows=list(windows)),
        SloObjective(
            name="latency", cell=cell_name, target=latency_target,
            good=MetricTerm(latency, {"cell": cell_name, "class": "fast"}),
            total=MetricTerm(latency, {"cell": cell_name}),
            windows=list(windows)),
    ]


class SloEngine:
    """Evaluates objectives on every scrape tick; dedupes alert state."""

    def __init__(self, scraper: Scraper, objectives: List[SloObjective],
                 registry=None):
        for objective in objectives:
            objective.validate()
        self.scraper = scraper
        self.objectives = objectives
        self.events: List[AlertEvent] = []
        self.active: Dict[Tuple[str, str, str], AlertEvent] = {}
        self.evaluations = 0
        # The cell's flight recorder (plane attaches it); alert fire /
        # resolve transitions land in the postmortem event stream.
        self.flight = NULL_FLIGHT
        if registry is not None:
            self._alerts_family = registry.counter(
                "cliquemap_slo_alerts_total",
                "SLO burn-rate alerts fired")
        else:
            self._alerts_family = None

    def attach(self) -> "SloEngine":
        """Register as a scraper observer (evaluate on every tick)."""
        self.scraper.add_observer(self.evaluate)
        return self

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, t: float, scraper: Optional[Scraper] = None) -> None:
        scraper = scraper or self.scraper
        self.evaluations += 1
        for objective in self.objectives:
            for window in objective.windows:
                self._evaluate_rule(t, scraper, objective, window)

    def _evaluate_rule(self, t: float, scraper: Scraper,
                       objective: SloObjective, window: BurnWindow) -> None:
        burn_long, events_long = objective.burn_rate(
            scraper, window.long_window, t)
        burn_short, _events_short = objective.burn_rate(
            scraper, window.short_window, t)
        key = (objective.name, objective.cell, window.severity)
        firing = (events_long >= objective.min_events and
                  burn_long >= window.factor and
                  burn_short >= window.factor)
        was_active = key in self.active
        if firing and not was_active:
            event = AlertEvent(t, "fire", objective.name, objective.cell,
                               window.severity, burn_long, burn_short,
                               window)
            self.active[key] = event
            self.events.append(event)
            if self._alerts_family is not None:
                self._alerts_family.labels(
                    cell=objective.cell, objective=objective.name,
                    severity=window.severity).inc()
            if self.flight:
                self.flight.record(
                    "alert", origin=f"slo/{objective.cell}",
                    event="fire", objective=objective.name,
                    severity=window.severity, burn_long=burn_long,
                    burn_short=burn_short)
        elif was_active and not firing:
            del self.active[key]
            self.events.append(
                AlertEvent(t, "resolve", objective.name, objective.cell,
                           window.severity, burn_long, burn_short, window))
            if self.flight:
                self.flight.record(
                    "alert", origin=f"slo/{objective.cell}",
                    event="resolve", objective=objective.name,
                    severity=window.severity, burn_long=burn_long,
                    burn_short=burn_short)

    # -- readbacks -----------------------------------------------------------

    def fired(self, objective: Optional[str] = None,
              cell: Optional[str] = None) -> List[AlertEvent]:
        """All "fire" transitions, optionally filtered."""
        return [e for e in self.events
                if e.kind == "fire"
                and (objective is None or e.objective == objective)
                and (cell is None or e.cell == cell)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "evaluations": self.evaluations,
            "active": sorted("/".join(k) for k in self.active),
            "events": [e.to_dict() for e in self.events],
        }
