"""The observability plane assembly: scraper + probers + SLO engine.

One :class:`ObservabilityPlane` serves one
:class:`~repro.core.cell.Cell`. It wires a
:class:`~repro.telemetry.timeseries.Scraper` onto the cell's simulator
clock (a tap — no scheduled events, so enabling the plane's scraping
leaves the run's event sequence untouched), starts per-cell synthetic
:class:`~repro.observe.prober.Prober` loops, and attaches a
:class:`~repro.observe.slo.SloEngine` that evaluates burn-rate rules on
every scrape tick. Exports — ``timeseries.json``, Chrome-trace
``trace.json``, Prometheus text — hang off the plane so the ``observe``
CLI and CI smoke jobs have one surface to call.

Normally reached through ``cell.observe(config)`` rather than built
directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..telemetry.export import prometheus_text, write_chrome_trace
from ..telemetry.timeseries import Scraper
from .prober import Prober, ProberConfig
from .slo import SloEngine, SloObjective, default_objectives


@dataclass
class ObserveConfig:
    """Everything the plane needs beyond the cell itself."""

    scrape_interval: float = 1e-3       # sim-seconds between scrapes
    retention_points: int = 4096        # ring-buffer depth per series
    retention_seconds: Optional[float] = None
    histogram_sum: bool = False         # scrape histogram sums too (O(n))
    probers: int = 1                    # synthetic probers to run
    prober: ProberConfig = field(default_factory=ProberConfig)
    availability_target: float = 0.99
    latency_target: float = 0.90
    # Multi-window burn-rate rule shape (sim-seconds; see slo module).
    alert_long_window: float = 0.4
    alert_short_window: float = 0.1
    alert_burn_factor: float = 2.0
    # Override the stock objectives entirely (None -> defaults).
    objectives: Optional[List[SloObjective]] = None
    # Keep enough finished span trees for a useful trace export.
    trace_retained: int = 512


class ObservabilityPlane:
    """Scraper + probers + SLO engine for one cell."""

    def __init__(self, cell, config: Optional[ObserveConfig] = None):
        self.cell = cell
        self.config = config or ObserveConfig()
        cfg = self.config
        self.scraper = Scraper(
            cell.metrics, interval=cfg.scrape_interval,
            retention_points=cfg.retention_points,
            retention_seconds=cfg.retention_seconds,
            histogram_sum=cfg.histogram_sum)
        self.probers: List[Prober] = []
        for i in range(cfg.probers):
            prober_cfg = ProberConfig(
                interval=cfg.prober.interval,
                num_keys=cfg.prober.num_keys,
                value_bytes=cfg.prober.value_bytes,
                deadline=cfg.prober.deadline,
                latency_slo_seconds=cfg.prober.latency_slo_seconds,
                erase_every=cfg.prober.erase_every,
                label=f"prober-{i}")
            self.probers.append(Prober(cell, prober_cfg))
        objectives = cfg.objectives if cfg.objectives is not None else \
            default_objectives(
                cell.spec.name,
                availability_target=cfg.availability_target,
                latency_target=cfg.latency_target,
                long_window=cfg.alert_long_window,
                short_window=cfg.alert_short_window,
                fire_factor=cfg.alert_burn_factor)
        self.engine = SloEngine(self.scraper, objectives,
                                registry=cell.metrics)
        # Alert transitions join the cell's flight-recorder stream (a
        # no-op NULL_FLIGHT when CellSpec.flight_recorder is off).
        self.engine.flight = cell.flight
        # Attached lazily by autoscale(); None keeps the control loop
        # entirely out of plain observability runs.
        self.autoscaler = None
        self.started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ObservabilityPlane":
        """Install the scrape tap, attach the engine, start probers."""
        if self.started:
            return self
        self.started = True
        self.scraper.install(self.cell.sim)
        self.engine.attach()
        if self.cell.tracer.max_retained < self.config.trace_retained:
            self.cell.tracer.max_retained = self.config.trace_retained
        for prober in self.probers:
            prober.start()
        return self

    def stop(self) -> None:
        """Stop probers and detach the scrape tap (idempotent)."""
        if not self.started:
            return
        self.started = False
        if self.autoscaler is not None:
            self.autoscaler.stop()
        for prober in self.probers:
            prober.stop()
        self.scraper.uninstall()

    def autoscale(self, config=None):
        """Attach (and start) the SLO-driven autoscaler — the closed
        loop from this plane's alerts and load series to online cell
        resize. Idempotent; returns the
        :class:`~repro.observe.autoscale.Autoscaler`."""
        if self.autoscaler is None:
            from .autoscale import Autoscaler
            self.autoscaler = Autoscaler(self, config).start()
        return self.autoscaler

    # -- readbacks / exports -------------------------------------------------

    def alerts(self):
        """All fired alert events so far."""
        return self.engine.fired()

    def sli_summary(self) -> Dict[str, Any]:
        """Per-prober SLIs plus alert totals, for tables and reports."""
        probers = {p.config.label: p.sli() for p in self.probers}
        return {
            "cell": self.cell.spec.name,
            "probers": probers,
            "alerts_fired": len(self.engine.fired()),
            "alerts_active": len(self.engine.active),
            "scrapes": self.scraper.scrapes,
        }

    def write_timeseries(self, path: str) -> int:
        """Write the scraped series (+ alert events) as JSON; returns
        the series count."""
        doc = self.scraper.to_dict()
        doc["alerts"] = self.engine.to_dict()
        doc["sli"] = self.sli_summary()
        with open(path, "w") as fh:
            json.dump(doc, fh)
        return len(doc["series"])

    def write_trace(self, path: str) -> int:
        """Write retained span trees as Chrome-trace JSON; returns the
        event count."""
        return write_chrome_trace(path, self.cell.tracer.finished,
                                  process_name=self.cell.spec.name)

    def prometheus_text(self) -> str:
        return prometheus_text(self.cell.metrics)
