"""SLO-driven autoscaling: the closed loop over elastic cells.

The :class:`Autoscaler` consumes two signals from a cell's
:class:`~repro.observe.ObservabilityPlane` — active SLO burn-rate alerts
(the engine's deduped ``active`` state) and the per-backend request-rate
series (``cliquemap_backend_rpcs_total`` scraped by the plane's tap) —
and drives the cell's :class:`~repro.core.resize.ResizeController`:

* **scale out** when an availability/latency burn alert is active or the
  mean per-backend RPC rate exceeds the high watermark;
* **scale in** only after ``hysteresis_rounds`` consecutive evaluations
  below the low watermark with no alert active — a single quiet window
  must not trigger a shrink that the next burst immediately reverses;
* **cooldown** between actions bounds the control loop's oscillation
  frequency regardless of signal noise.

Evaluations while a resize is already in flight (this controller's or
anyone else's) are recorded as ``blocked`` and skipped: the resize
controller itself serializes on the cell's topology lock, so the
autoscaler never queues a second resize behind an active one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..core.errors import CliqueMapError


@dataclass
class AutoscalerConfig:
    """Control-loop shape and watermarks."""

    evaluate_interval: float = 0.05   # sim-seconds between evaluations
    load_window: float = 0.1          # lookback for the rate estimate
    # Mean per-serving-backend RPC rate watermarks (ops/sim-second).
    scale_out_rps: float = 30_000.0
    scale_in_rps: float = 5_000.0
    min_shards: int = 3
    max_shards: int = 16
    grow_step: int = 1
    shrink_step: int = 1
    cooldown: float = 0.3             # min gap between resize actions
    hysteresis_rounds: int = 3        # consecutive low rounds before shrink
    # Objectives whose active alerts force a scale-out.
    alert_objectives: tuple = ("availability", "latency")

    def __post_init__(self) -> None:
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise CliqueMapError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{self.min_shards!r}/{self.max_shards!r}")
        if self.scale_in_rps >= self.scale_out_rps:
            raise CliqueMapError(
                "scale_in_rps must be below scale_out_rps "
                f"({self.scale_in_rps!r} >= {self.scale_out_rps!r})")
        if self.hysteresis_rounds < 1:
            raise CliqueMapError(
                f"hysteresis_rounds must be >= 1, "
                f"got {self.hysteresis_rounds!r}")


@dataclass
class AutoscalerStats:
    evaluations: int = 0
    grows: int = 0
    shrinks: int = 0
    blocked: int = 0


class Autoscaler:
    """Closes the loop from the observability plane to cell resize."""

    def __init__(self, plane, config: Optional[AutoscalerConfig] = None):
        self.plane = plane
        self.cell = plane.cell
        self.sim = plane.cell.sim
        self.config = config or AutoscalerConfig()
        self.stats = AutoscalerStats()
        # (at, action, reason, shards) tuples; tests and reports read it.
        self.decisions: List[dict] = []
        self._m_decisions = self.cell.metrics.counter(
            "cliquemap_autoscaler_decisions_total",
            "Autoscaler evaluation outcomes by action")
        self._low_rounds = 0
        self._last_action_at: Optional[float] = None
        self._proc = None
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Autoscaler":
        if self._proc is None or not self._proc.is_alive:
            self._stopped = False
            self._proc = self.sim.process(self._loop(), name="autoscaler")
            self._proc.defused = True
        return self

    def stop(self) -> None:
        self._stopped = True
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt()
        self._proc = None

    # -- the control loop ----------------------------------------------------

    def _loop(self) -> Generator:
        while not self._stopped:
            yield self.sim.sleep(self.config.evaluate_interval)
            yield from self.evaluate_once()

    def evaluate_once(self) -> Generator:
        """One evaluation round (public so tests can step the loop)."""
        cfg = self.config
        self.stats.evaluations += 1
        now = self.sim.now
        serving = self.cell.config_store.peek(
            self.cell.spec.name).shard_tasks
        rps = self.plane.scraper.rate(
            "cliquemap_backend_rpcs_total", cfg.load_window, now) \
            / max(1, len(serving))
        alerting = any(key[0] in cfg.alert_objectives
                       for key in self.plane.engine.active)

        if self.cell.resize.active or self.cell.topology_lock.count:
            self.stats.blocked += 1
            self._record(now, "blocked", "resize-or-maintenance-active",
                         len(serving), rps)
            return

        in_cooldown = (self._last_action_at is not None and
                       now - self._last_action_at < cfg.cooldown)
        wants_out = alerting or rps > cfg.scale_out_rps
        if wants_out:
            self._low_rounds = 0
            if len(serving) >= cfg.max_shards:
                self._record(now, "hold", "at-max-shards", len(serving), rps)
                return
            if in_cooldown:
                self._record(now, "hold", "cooldown", len(serving), rps)
                return
            reason = "slo-burn-alert" if alerting else "load-high"
            self._record(now, "grow", reason, len(serving), rps)
            self.stats.grows += 1
            self._last_action_at = now
            yield from self.cell.grow(cfg.grow_step)
            return

        if rps < cfg.scale_in_rps:
            self._low_rounds += 1
            if self._low_rounds < cfg.hysteresis_rounds:
                self._record(now, "hold", "hysteresis", len(serving), rps)
                return
            if len(serving) - cfg.shrink_step < cfg.min_shards or \
                    len(serving) - cfg.shrink_step < \
                    self.cell.spec.mode.replicas:
                self._record(now, "hold", "at-min-shards", len(serving), rps)
                return
            if in_cooldown:
                self._record(now, "hold", "cooldown", len(serving), rps)
                return
            self._low_rounds = 0
            self._record(now, "shrink", "load-low", len(serving), rps)
            self.stats.shrinks += 1
            self._last_action_at = now
            yield from self.cell.shrink(count=cfg.shrink_step)
            return

        self._low_rounds = 0
        self._record(now, "hold", "steady", len(serving), rps)

    def _record(self, at: float, action: str, reason: str,
                shards: int, rps: float) -> None:
        self._m_decisions.labels(action=action).inc()
        self.decisions.append({"at": at, "action": action, "reason": reason,
                               "shards": shards, "per_backend_rps": rps})
