"""Synthetic end-to-end probers (the paper's continuous E2E probes).

A :class:`Prober` owns a dedicated client on its own host and issues a
steady round of SET / GET / (periodic) ERASE against a small set of
dedicated probe keys, through the *real* client path — quorum reads,
retries, backoff, quarantine — so its SLIs measure exactly what an
application client would experience. This is how quorum-masked lossy
replicas, quarantine flaps, and partitions become visible: per-replica
counters can look healthy while the client's vantage degrades.

Probe results land in three counter families (all labeled
``cell=/prober=/op=``):

* ``cliquemap_probe_ops_total{result=ok|error|corrupt}`` — availability
  SLI numerator/denominator. ``corrupt`` means the GET returned the
  wrong value (or a MISS) for a key a quorum-applied SET just wrote —
  a data-integrity failure, counted separately from unavailability.
* ``cliquemap_probe_latency_class_total{class=fast|slow}`` — latency
  SLI: an op is ``fast`` when it completes within the prober's
  per-op latency SLO threshold.
* ``cliquemap_probe_latency_seconds`` — the full latency distribution
  (histogram), for dashboards rather than alerting.

Probe keys are namespaced ``__probe__/<prober>/<n>`` so they never
collide with workload keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional

from ..core.errors import GetStatus


@dataclass
class ProberConfig:
    """Shape of one prober's traffic and its per-op latency threshold."""

    interval: float = 5e-3          # sim-seconds between probe rounds
    num_keys: int = 8               # dedicated probe keys, round-robined
    value_bytes: int = 64           # probe value payload size
    deadline: float = 2e-3          # per-op deadline (availability bound)
    latency_slo_seconds: float = 1.5e-3   # "fast" threshold for the SLI
    erase_every: int = 16           # every Nth round also exercises ERASE
    label: str = "prober-0"

    def validate(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval!r}")
        if self.num_keys < 1:
            raise ValueError(f"num_keys must be >= 1, got {self.num_keys!r}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline!r}")
        if self.latency_slo_seconds <= 0:
            raise ValueError("latency_slo_seconds must be > 0, got "
                             f"{self.latency_slo_seconds!r}")
        if self.erase_every < 1:
            raise ValueError(
                f"erase_every must be >= 1, got {self.erase_every!r}")


class Prober:
    """One synthetic prober: a dedicated client plus its probe loop."""

    def __init__(self, cell, config: Optional[ProberConfig] = None,
                 client_kwargs: Optional[Dict[str, Any]] = None):
        self.cell = cell
        self.config = config or ProberConfig()
        self.config.validate()
        self.sim = cell.sim
        self.client = cell.make_client(**(client_kwargs or {}))
        self.rounds = 0
        self._running = False
        self._proc = None
        registry = cell.metrics
        base = dict(cell=cell.spec.name, prober=self.config.label)
        ops = registry.counter(
            "cliquemap_probe_ops_total",
            "Synthetic probe operations by outcome")
        latency_class = registry.counter(
            "cliquemap_probe_latency_class_total",
            "Probe ops classified against the per-op latency SLO")
        latency = registry.histogram(
            "cliquemap_probe_latency_seconds",
            "End-to-end probe op latency (simulated seconds)")
        self._m_ops = {
            (op, result): ops.labels(op=op, result=result, **base)
            for op in ("get", "set", "erase")
            for result in ("ok", "error", "corrupt")}
        self._m_class = {
            (op, speed): latency_class.labels(op=op, **{"class": speed},
                                              **base)
            for op in ("get", "set", "erase")
            for speed in ("fast", "slow")}
        self._m_latency = {op: latency.labels(op=op, **base)
                           for op in ("get", "set", "erase")}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the probe loop as a simulator process (idempotent)."""
        if self._running:
            return
        self._running = True
        self._proc = self.sim.process(
            self._loop(), name=f"prober:{self.config.label}")

    def stop(self) -> None:
        """Stop issuing new rounds (the in-flight round completes)."""
        self._running = False

    # -- probing -------------------------------------------------------------

    def _key(self, round_index: int) -> bytes:
        n = round_index % self.config.num_keys
        return f"__probe__/{self.config.label}/{n}".encode()

    def _value(self, round_index: int) -> bytes:
        stamp = f"probe:{self.config.label}:{round_index}:".encode()
        return stamp.ljust(self.config.value_bytes, b"x")

    def _record(self, op: str, result: str, latency: float) -> None:
        self._m_ops[(op, result)].inc()
        self._m_latency[op].observe(latency)
        speed = "fast" if latency <= self.config.latency_slo_seconds \
            else "slow"
        self._m_class[(op, speed)].inc()

    def _loop(self) -> Generator:
        yield from self.client.connect()
        while self._running:
            yield from self._round(self.rounds)
            self.rounds += 1
            yield self.sim.sleep(self.config.interval)

    def _round(self, index: int) -> Generator:
        """One probe round: SET, then GET-and-verify, then maybe ERASE."""
        cfg = self.config
        key = self._key(index)
        value = self._value(index)

        set_res = yield from self.client.set(key, value,
                                             deadline=cfg.deadline)
        self._record("set", "ok" if set_res.ok else "error",
                     set_res.latency)

        get_res = yield from self.client.get(key, deadline=cfg.deadline)
        if get_res.status is GetStatus.ERROR:
            self._record("get", "error", get_res.latency)
        elif set_res.ok and (get_res.status is not GetStatus.HIT or
                             get_res.value != value):
            # A quorum-applied SET must be readable: a MISS or a wrong
            # value here is corruption/loss, not mere unavailability.
            self._record("get", "corrupt", get_res.latency)
        else:
            self._record("get", "ok", get_res.latency)

        if (index + 1) % cfg.erase_every == 0:
            erase_res = yield from self.client.erase(key,
                                                     deadline=cfg.deadline)
            self._record("erase", "ok" if erase_res.ok else "error",
                         erase_res.latency)

    # -- readbacks -----------------------------------------------------------

    def sli(self) -> Dict[str, float]:
        """Point-in-time SLIs from this prober's counters."""
        ok = sum(c.value for (op, r), c in self._m_ops.items() if r == "ok")
        bad = sum(c.value for (op, r), c in self._m_ops.items() if r != "ok")
        fast = sum(c.value for (op, s), c in self._m_class.items()
                   if s == "fast")
        slow = sum(c.value for (op, s), c in self._m_class.items()
                   if s == "slow")
        total = ok + bad
        classed = fast + slow
        return {
            "ops": total,
            "availability": ok / total if total else float("nan"),
            "latency_sli": fast / classed if classed else float("nan"),
        }
