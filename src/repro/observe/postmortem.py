"""Postmortem bundles: everything a debugging session needs, in one dir.

When a chaos soak trips an invariant or an SLO alert fires, the live
state that explains *why* — the flight-recorder event stream leading up
to the failure, the trailing metrics window, the span trees of the
slowest and erroring ops — is about to be garbage-collected with the
run. A postmortem bundle freezes that state to disk the moment the
verdict lands:

    <export_dir>/postmortem-<reason>/
        manifest.json     what, when (sim time), why, and what's inside
        flight.json       the flight-recorder ring (structured events)
        flight.txt        the same events rendered one-per-line
        timeseries.json   trailing window of every scraped series
        alerts.json       SLO engine transitions (fire/resolve)
        traces.json       span trees: every error op + the N slowest

Bundles are written by :func:`write_postmortem_bundle`; the soak
harness calls it automatically (``SoakConfig.export_dir`` +
a violation or fired alert — healthy runs write nothing), and the
``observe``/``chaos`` CLIs expose the same path. Everything in the
bundle is plain JSON so ``repro.tools trace --stitch`` and the
flight-recorder query surface work on it offline.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional

from ..telemetry.trace import ERROR_STATUSES

# Bundle shape knobs — deliberately module constants, not config: a
# postmortem should look the same no matter which harness wrote it.
# The flight recorder is dumped whole: its ring is already the bounded
# "last N events", and trimming it again here would drop the rare
# causal events (faults, resize phases) under the bulk op stream.
SLOWEST_TRACES = 8
ERROR_TRACES = 32


def _slug(reason: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", reason.lower()).strip("-") or "unknown"


def _write_json(path: str, doc: Any) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)


def _span_status(span: Dict[str, Any]) -> str:
    return str(span.get("labels", {}).get("status", ""))


def select_traces(finished, slowest: int = SLOWEST_TRACES,
                  errors: int = ERROR_TRACES) -> List[Dict[str, Any]]:
    """The bundle's trace selection: every error root (up to a cap)
    plus the N slowest roots, deduped, as span dicts."""
    roots = [span.to_dict() for span in finished]
    error_roots = [r for r in roots
                   if _span_status(r) in ERROR_STATUSES][-errors:]
    by_duration = sorted(roots, key=lambda r: r.get("duration") or 0.0,
                         reverse=True)[:slowest]
    picked: List[Dict[str, Any]] = []
    seen = set()
    for root in error_roots + by_duration:
        key = id(root)
        if key not in seen:
            seen.add(key)
            picked.append(root)
    return picked


def write_postmortem_bundle(export_dir: str, reason: str,
                            cell=None, plane=None, flight=None,
                            tracer=None,
                            detail: Optional[Dict[str, Any]] = None) -> str:
    """Freeze the run's debugging state under ``export_dir``.

    ``reason`` names the trigger (e.g. ``invariant_violation``,
    ``slo_alert``) and the bundle directory. ``cell`` supplies the
    flight recorder and tracer unless ``flight``/``tracer`` override
    them; ``plane`` (optional) contributes the scraped time series and
    alert log. ``detail`` is free-form context recorded verbatim in the
    manifest (violation messages, fired-alert summaries). Returns the
    bundle directory path.
    """
    flight = flight if flight is not None else getattr(cell, "flight", None)
    tracer = tracer if tracer is not None else getattr(cell, "tracer", None)
    bundle_dir = os.path.join(export_dir, f"postmortem-{_slug(reason)}")
    os.makedirs(bundle_dir, exist_ok=True)
    contents = ["manifest.json"]

    if flight is not None:
        events = flight.to_dicts()
        _write_json(os.path.join(bundle_dir, "flight.json"), {
            "recorded": getattr(flight, "recorded", 0),
            "retained": len(events),
            "events": events,
        })
        with open(os.path.join(bundle_dir, "flight.txt"), "w") as fh:
            fh.write(flight.render() + "\n")
        contents += ["flight.json", "flight.txt"]

    if plane is not None:
        doc = plane.scraper.to_dict()
        doc["alerts"] = plane.engine.to_dict()
        _write_json(os.path.join(bundle_dir, "timeseries.json"), doc)
        _write_json(os.path.join(bundle_dir, "alerts.json"),
                    plane.engine.to_dict())
        contents += ["timeseries.json", "alerts.json"]

    traces: List[Dict[str, Any]] = []
    if tracer is not None and getattr(tracer, "finished", None):
        traces = select_traces(tracer.finished)
        _write_json(os.path.join(bundle_dir, "traces.json"),
                    {"traces": traces})
        contents.append("traces.json")

    now = None
    for source in (cell, plane):
        sim = getattr(source, "sim", None) or getattr(
            getattr(source, "cell", None), "sim", None)
        if sim is not None:
            now = sim.now
            break
    _write_json(os.path.join(bundle_dir, "manifest.json"), {
        "reason": reason,
        "sim_now": now,
        "cell": getattr(getattr(cell, "spec", None), "name", None),
        "contents": sorted(contents),
        "flight_events": len(flight) if flight is not None else 0,
        "traces": len(traces),
        "detail": detail or {},
    })
    return bundle_dir


def find_bundles(export_dir: str) -> List[str]:
    """Bundle directories under ``export_dir`` (CI asserts on this)."""
    if not os.path.isdir(export_dir):
        return []
    return sorted(
        os.path.join(export_dir, name)
        for name in os.listdir(export_dir)
        if name.startswith("postmortem-")
        and os.path.isfile(os.path.join(export_dir, name, "manifest.json")))


__all__ = ["write_postmortem_bundle", "find_bundles", "select_traces",
           "SLOWEST_TRACES", "ERROR_TRACES"]
