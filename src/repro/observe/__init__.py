"""Continuous observability plane: probers, SLOs, burn-rate alerts.

The paper's productionization story rests on continuous end-to-end
probers, per-cell SLIs, and burn-rate alerting that surface gray
failures and regressions before users do. This package reproduces that
plane on top of :mod:`repro.telemetry`:

* :mod:`repro.observe.prober` — synthetic per-cell probers issuing
  dedicated-key GET/SET/erase traffic through the real client path.
* :mod:`repro.observe.slo` — windowed SLO objectives with multi-window
  burn-rate alert rules evaluated over scraped time series.
* :mod:`repro.observe.plane` — the assembly: scraper + probers + SLO
  engine, attached to a :class:`~repro.core.cell.Cell` via
  ``cell.observe()``.
* :mod:`repro.observe.autoscale` — the SLO-driven autoscaler closing
  the loop from burn-rate alerts and per-backend load series to online
  cell resize (``plane.autoscale()``).
* :mod:`repro.observe.postmortem` — postmortem bundles freezing the
  flight-recorder tail, the trailing time series, and the slow/error
  span trees to disk when a soak trips an invariant or an alert fires.
"""

from .autoscale import Autoscaler, AutoscalerConfig, AutoscalerStats
from .plane import ObservabilityPlane, ObserveConfig
from .postmortem import find_bundles, select_traces, write_postmortem_bundle
from .prober import Prober, ProberConfig
from .slo import (AlertEvent, BurnWindow, MetricTerm, SloEngine,
                  SloObjective, default_objectives)

__all__ = [
    "Autoscaler", "AutoscalerConfig", "AutoscalerStats",
    "ObservabilityPlane", "ObserveConfig",
    "Prober", "ProberConfig",
    "AlertEvent", "BurnWindow", "MetricTerm", "SloEngine", "SloObjective",
    "default_objectives",
    "write_postmortem_bundle", "find_bundles", "select_traces",
]
