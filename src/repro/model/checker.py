"""Breadth-first explicit-state checker for the R=3.2 model.

Enumerates every reachable interleaving of a bounded workload — clients
issuing SETs/ERASEs, the network delivering them to replicas in any
order, at most one crash and a repair-on-restart — and checks the
safety invariants the paper relied on TLA+ for (§5.1):

* **I1 Durability under a single failure** — once a SET is acknowledged
  (reached a quorum) and not superseded by a newer mutation, every
  decided quorum read returns it: its version is readable from at least
  QUORUM live replicas, even in crashed states.
* **I2 Monotonicity** — a replica's effective version (stored or erase
  floor) never decreases.
* **I3 No resurrection** — after an acknowledged ERASE with no newer
  SET anywhere, no decided quorum read returns a value.
* **I4 Quorum existence** — with no mutations in flight and no crash,
  at least a quorum of replicas agree (dirty quorums are legal and get
  scan-repaired; three-way divergence never happens).
* **I5 CAS lost-update freedom** — two CAS conditioned on the same
  expected version never both reach an applied quorum (the per-replica
  check-and-install must be atomic; pigeonhole over three replicas then
  forbids double success).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .state import ABSENT, QUORUM, REPLICAS, ModelState


@dataclass
class Counterexample:
    invariant: str
    state: ModelState
    detail: str
    trace: Tuple[str, ...]


@dataclass
class CheckResult:
    states_explored: int
    transitions: int
    counterexample: Optional[Counterexample] = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None


def successors(state: ModelState, ops_budget: Dict[str, int]
               ) -> List[Tuple[str, ModelState, Dict[str, int]]]:
    """All (action-label, next-state, remaining-budget) transitions."""
    out = []
    # Clients issue new mutations while budget remains.
    for kind in ("set", "erase"):
        if ops_budget.get(kind, 0) > 0:
            budget = dict(ops_budget)
            budget[kind] -= 1
            out.append((f"issue-{kind}", state.issue(kind), budget))
    if ops_budget.get("cas", 0) > 0:
        # A CAS may be conditioned on any version the client could have
        # read (including ABSENT for creation).
        for expected in range(state.issued_max + 1):
            budget = dict(ops_budget)
            budget["cas"] -= 1
            out.append((f"issue-cas@exp{expected}",
                        state.issue("cas", expected=expected), budget))
    # The network delivers any pending mutation to any live replica that
    # has not yet processed it.
    for mutation in state.pending:
        for replica in state.live_replicas():
            if replica not in mutation.delivered:
                out.append((
                    f"deliver-{mutation.kind}@v{mutation.version}->r{replica}",
                    state.apply(mutation, replica), ops_budget))
    # At most one crash; it may happen at any time.
    if state.crashed is None and ops_budget.get("crash", 0) > 0:
        for replica in range(REPLICAS):
            budget = dict(ops_budget)
            budget["crash"] -= 1
            out.append((f"crash-r{replica}", state.crash(replica), budget))
    # A crashed replica may restart (with repair) at any time.
    if state.crashed is not None:
        out.append((f"restart-r{state.crashed}",
                    state.restart_with_repair(), ops_budget))
    # The periodic cohort scan may repair the cohort whenever it is
    # divergent (§5.4); the repair installs at a fresh VersionNumber.
    if state.is_divergent():
        out.append(("scan-repair", state.scan_repair(), ops_budget))
    return out


def _effective(state: ModelState, replica: int) -> int:
    return max(state.stored[replica], state.erased[replica])


def check_invariants(state: ModelState, prev: Optional[ModelState],
                     crash_free: bool = True,
                     cas_free: bool = True) -> Optional[str]:
    """Return a violation description, or None if all invariants hold.

    ``crash_free`` scopes I3: tombstones live on backend heaps, so an
    acked ERASE whose tombstone was lost in a crash may legitimately be
    out-survived by a value a repair re-installs (cache semantics; the
    paper promises "never inconsistent" versioning, not durable erases).

    ``cas_free`` scopes I4: a CAS that loses its race applies at a
    minority of replicas (client sees FAILED), which can legally leave
    three-way divergence until a scan repair reconciles it — so exact
    quorum-existence is only an invariant for set/erase workloads.
    """
    # I2: per-replica effective versions never decrease (vs. parent),
    # except for a crash wiping a replica (checked by comparing only
    # replicas live in both states and not just-restarted).
    if prev is not None:
        for replica in range(REPLICAS):
            if replica == state.crashed or replica == prev.crashed:
                continue
            if _effective(state, replica) < _effective(prev, replica):
                return (f"I2 monotonicity: replica {replica} regressed "
                        f"{_effective(prev, replica)} -> "
                        f"{_effective(state, replica)}")

    reads = state.quorum_reads()

    # I1: an acked, unsuperseded SET whose deliveries to live replicas
    # have quiesced must be what every decided read sees. (While a
    # delivery is still in flight a transient dirty quorum is legal —
    # the client retries; the paper's repairs bound how long it lasts.)
    for version in state.acked_sets():
        if state.superseded_by(version):
            continue
        in_flight = any(
            m.version == version and
            any(r not in m.delivered for r in state.live_replicas())
            for m in state.pending)
        if in_flight:
            continue
        holders = sum(1 for i in state.live_replicas()
                      if state.stored[i] == version)
        if holders < QUORUM:
            return (f"I1 durability: acked set v{version} readable from "
                    f"only {holders} live replicas in {state}")
        for outcome in reads:
            if outcome != version:
                return (f"I1 durability: decided read returned {outcome} "
                        f"while acked, unsuperseded set v{version} exists")

    # I3: an acked ERASE with no newer SET -> no decided read returns
    # data (crash-free executions only; see docstring).
    acked_erases = []
    if crash_free:
        acked_erases = [m.version for m in state.pending
                        if m.kind == "erase" and m.acked]
    if crash_free:
        for i in range(REPLICAS):
            if state.erased[i] != ABSENT and \
                    sum(1 for j in range(REPLICAS)
                        if state.erased[j] >= state.erased[i]) >= QUORUM:
                acked_erases.append(state.erased[i])
    for version in acked_erases:
        newer_set_exists = any(
            m.kind == "set" and m.version > version for m in state.pending
        ) or any(s > version for s in state.stored)
        if newer_set_exists:
            continue
        for outcome in reads:
            if outcome != ABSENT:
                return (f"I3 resurrection: read returned v{outcome} after "
                        f"acked erase v{version} with no newer set")

    # I5: no two CAS with the same expectation both reach an applied
    # quorum — the lost-update freedom CAS exists to provide.
    cas_by_expected = {}
    for m in state.cas_outcomes():
        if m.ack_applied:
            cas_by_expected.setdefault(m.expected, []).append(m.version)
    for expected, versions in cas_by_expected.items():
        if len(versions) > 1:
            return (f"I5 lost-update: CAS {sorted(versions)} all applied "
                    f"at a quorum against expected v{expected}")

    # I4: quiescent, crash-free states always contain a quorum — at most
    # one replica may disagree (a dirty quorum, §5.4), never all three.
    # Full convergence is a liveness property delivered by scan repairs.
    if cas_free and not state.pending and state.crashed is None:
        counts = {}
        for s in state.stored:
            counts[s] = counts.get(s, 0) + 1
        if max(counts.values()) < QUORUM:
            return f"I4 quorum-exists: three-way divergence {state.stored}"

    return None


def check(max_sets: int = 2, max_erases: int = 1, max_cas: int = 0,
          allow_crash: bool = True) -> CheckResult:
    """Explore all interleavings of a bounded workload; check invariants."""
    initial_budget = {"set": max_sets, "erase": max_erases,
                      "cas": max_cas,
                      "crash": 1 if allow_crash else 0}
    initial = ModelState()

    seen: Set[Tuple[ModelState, Tuple[Tuple[str, int], ...]]] = set()
    queue = deque()

    def budget_key(budget):
        return tuple(sorted(budget.items()))

    queue.append((initial, initial_budget, ()))
    seen.add((initial, budget_key(initial_budget)))
    states = 0
    transitions = 0

    while queue:
        state, budget, trace = queue.popleft()
        states += 1
        for label, nxt, nxt_budget in successors(state, budget):
            transitions += 1
            crash_free = nxt_budget.get("crash", 0) == \
                initial_budget["crash"] and nxt.crashed is None
            cas_free = initial_budget.get("cas", 0) == 0
            violation = check_invariants(nxt, state, crash_free, cas_free)
            if violation is not None:
                return CheckResult(states, transitions, Counterexample(
                    invariant=violation.split(":")[0],
                    state=nxt, detail=violation,
                    trace=trace + (label,)))
            key = (nxt, budget_key(nxt_budget))
            if key not in seen:
                seen.add(key)
                queue.append((nxt, nxt_budget, trace + (label,)))

    return CheckResult(states, transitions)


def check_double_failure_breaks() -> bool:
    """Sanity counterpoint: with two simultaneous failures the durability
    guarantee genuinely does not hold (quorum cannot form), confirming
    the model is not vacuously safe."""
    state = ModelState()
    state = state.issue("set")
    mutation = state.pending[0]
    state = state.apply(mutation, 0)
    state = state.apply(mutation, 1)   # acked at a quorum
    # Manually wipe two replicas (the model type allows only one crash;
    # emulate the second by zeroing state).
    stored = list(state.stored)
    stored[0] = ABSENT
    stored[1] = ABSENT
    broken = ModelState(tuple(stored), state.erased, (), None,
                        state.issued_max)
    holders = sum(1 for s in broken.stored if s == mutation.version)
    return holders < QUORUM
