"""Explicit-state model checking of the R=3.2 protocol (TLA+-style)."""

from .checker import (CheckResult, Counterexample, check,
                      check_double_failure_breaks, check_invariants,
                      successors)
from .state import ABSENT, QUORUM, REPLICAS, ModelState, Mutation

__all__ = [
    "CheckResult", "Counterexample", "check", "check_double_failure_breaks",
    "check_invariants", "successors",
    "ABSENT", "QUORUM", "REPLICAS", "ModelState", "Mutation",
]
