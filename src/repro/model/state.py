"""Abstract protocol state for model-checking R=3.2 (§5.1 footnote 3).

The paper proved single-failure tolerance of the R=3.2 quorum protocol
in TLA+. This module defines the corresponding abstract model: three
replicas holding per-key versions, uncoordinated mutations delivered to
replicas in any order, monotonic apply, tombstones, at most one crashed
replica (with repair on restart), and quorum reads.

States are small immutable tuples so the checker can enumerate the full
reachable space by breadth-first search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

REPLICAS = 3
QUORUM = 2

ABSENT = 0  # version 0 means "no value stored"


@dataclass(frozen=True)
class Mutation:
    """A client mutation in flight: applied to some replicas, not others.

    ``kind`` is "set", "erase", or "cas"; ``version`` is a totally-ordered
    int (standing in for {TrueTime, ClientId, Seq}); ``delivered`` is the
    set of replica indices that have *processed* it and ``applied`` the
    subset that actually mutated state (a monotonicity/CAS-mismatch
    reject processes without applying). CAS mutations carry the
    ``expected`` version they are conditional on.
    """

    kind: str
    version: int
    delivered: FrozenSet[int] = frozenset()
    applied: FrozenSet[int] = frozenset()
    expected: int = -1   # only meaningful for kind == "cas"

    def deliver_to(self, replica: int, did_apply: bool) -> "Mutation":
        applied = self.applied | {replica} if did_apply else self.applied
        return Mutation(self.kind, self.version,
                        self.delivered | {replica}, applied, self.expected)

    @property
    def fully_delivered(self) -> bool:
        return len(self.delivered) == REPLICAS

    @property
    def acked(self) -> bool:
        """Client-visible success: a quorum of replicas processed it."""
        return len(self.delivered) >= QUORUM

    @property
    def ack_applied(self) -> bool:
        """A quorum of replicas actually applied it (CAS success)."""
        return len(self.applied) >= QUORUM


@dataclass(frozen=True)
class ModelState:
    """One global protocol state for a single key."""

    # Per-replica stored version (ABSENT or the version of the stored
    # value). A stored version is always a "set" version.
    stored: Tuple[int, ...] = (ABSENT,) * REPLICAS
    # Per-replica tombstone floor: the highest erase version processed.
    erased: Tuple[int, ...] = (ABSENT,) * REPLICAS
    # In-flight mutations (ordered tuple for hashability).
    pending: Tuple[Mutation, ...] = ()
    # Index of the crashed replica, if any (at most one).
    crashed: Optional[int] = None
    # Highest version of any mutation issued so far.
    issued_max: int = 0
    # Completed CAS mutations (kept for the lost-update invariant I5).
    # A frozenset so states differing only in completion order coincide.
    history: FrozenSet[Mutation] = frozenset()

    # -- replica-side transition -------------------------------------------

    def apply(self, mutation: Mutation, replica: int) -> "ModelState":
        """Deliver ``mutation`` to ``replica`` (monotonic apply, §5.2).

        CAS applies only when the stored version equals its expectation —
        checked atomically with the install, under the backend's per-key
        lock (the TOCTOU the implementation must not have).
        """
        if replica == self.crashed:
            raise ValueError("cannot deliver to a crashed replica")
        stored = list(self.stored)
        erased = list(self.erased)
        floor = max(stored[replica], erased[replica])
        did_apply = False
        if mutation.version > floor:
            if mutation.kind == "set":
                stored[replica] = mutation.version
                did_apply = True
            elif mutation.kind == "cas":
                if stored[replica] == mutation.expected:
                    stored[replica] = mutation.version
                    did_apply = True
            else:
                stored[replica] = ABSENT
                erased[replica] = mutation.version
                did_apply = True
        # Match the pending entry by logical identity (kind, version) so
        # callers may hold a stale handle with an older delivered-set.
        pending = tuple(
            m.deliver_to(replica, did_apply)
            if (m.kind, m.version) == (mutation.kind, mutation.version)
            else m
            for m in self.pending)
        # Fully-delivered mutations leave the network; fully-delivered CAS
        # outcomes are retained (their ack_applied matters to I5) — they
        # are moved to the history tuple instead.
        history = self.history
        done = tuple(m for m in pending
                     if m.fully_delivered and m.kind == "cas")
        if done:
            history = history | frozenset(done)
        pending = tuple(m for m in pending if not m.fully_delivered)
        return ModelState(tuple(stored), tuple(erased), pending,
                          self.crashed, self.issued_max, history)

    # -- client-side transitions --------------------------------------------

    def issue(self, kind: str, expected: int = -1) -> "ModelState":
        version = self.issued_max + 1
        mutation = Mutation(kind, version, expected=expected)
        return ModelState(self.stored, self.erased,
                          self.pending + (mutation,), self.crashed, version,
                          self.history)

    # -- failure transitions -----------------------------------------------

    def crash(self, replica: int) -> "ModelState":
        if self.crashed is not None:
            raise ValueError("at most one crash in the single-failure model")
        # A crashed replica loses its state (restart is with empty DRAM);
        # pending deliveries to it are dropped.
        stored = list(self.stored)
        erased = list(self.erased)
        stored[replica] = ABSENT
        erased[replica] = ABSENT
        pending = tuple(m for m in self.pending
                        if not (m.delivered == frozenset(
                            set(range(REPLICAS)) - {replica})))
        return ModelState(tuple(stored), tuple(erased), pending, replica,
                          self.issued_max, self.history)

    def restart_with_repair(self) -> "ModelState":
        """The crashed replica restarts and runs restart recovery (§5.4):
        it adopts the highest stored/erase versions among its cohort."""
        if self.crashed is None:
            raise ValueError("nothing to restart")
        replica = self.crashed
        healthy = [i for i in range(REPLICAS) if i != replica]
        stored = list(self.stored)
        erased = list(self.erased)
        # Repair sources the per-key max from the healthy cohort.
        best_set = max(stored[i] for i in healthy)
        best_erase = max(erased[i] for i in healthy)
        if best_set > best_erase:
            stored[replica] = best_set
        else:
            stored[replica] = ABSENT
            erased[replica] = best_erase
        return ModelState(tuple(stored), tuple(erased), self.pending, None,
                          self.issued_max, self.history)

    def scan_repair(self) -> "ModelState":
        """The periodic cohort scan (§5.4): a backend observing a dirty
        quorum re-installs the datum at a *new* VersionNumber N on every
        live replica, so the cohort settles on one consistent view.

        The scanner exchanges KeyHashes of *stored* entries only (the
        index region); tombstones are not exchanged, exactly as in the
        implementation — so a lone surviving value wins over lost
        tombstones, at a version that supersedes them.
        """
        live = self.live_replicas()
        best_set = max(self.stored[i] for i in live)
        if best_set == ABSENT:
            return self  # nothing stored anywhere: nothing to repair
        new_version = self.issued_max + 1
        stored = list(self.stored)
        erased = list(self.erased)
        for i in live:
            stored[i] = new_version
        return ModelState(tuple(stored), tuple(erased), self.pending,
                          self.crashed, new_version, self.history)

    def is_divergent(self) -> bool:
        """True when some live replica disagrees with the others."""
        live = self.live_replicas()
        return len({(self.stored[i], ) for i in live}) > 1

    # -- derived client views ----------------------------------------------

    def live_replicas(self) -> Tuple[int, ...]:
        return tuple(i for i in range(REPLICAS) if i != self.crashed)

    def quorum_reads(self) -> Tuple[Optional[int], ...]:
        """Every outcome a quorum GET could observe right now.

        A read samples all live replicas; any two agreeing on (presence,
        version) decide. Returns decided outcomes only (a racing client
        would retry the undecided cases). ``ABSENT`` means a decided miss.
        """
        live = self.live_replicas()
        outcomes = set()
        for i in range(len(live)):
            for j in range(i + 1, len(live)):
                a, b = live[i], live[j]
                if self.stored[a] == self.stored[b]:
                    outcomes.add(self.stored[a])
        return tuple(sorted(outcomes))

    # -- invariant inputs ----------------------------------------------------

    def acked_sets(self) -> Tuple[int, ...]:
        """Versions of SETs known to have reached a quorum, and therefore
        acknowledged to some client."""
        acked = [m.version for m in self.pending
                 if m.kind == "set" and m.acked]
        # Fully-delivered mutations are no longer pending; reconstruct
        # them from replica state: any version stored at >= QUORUM
        # replicas was necessarily acked.
        for version in set(self.stored):
            if version != ABSENT and \
                    sum(1 for s in self.stored if s == version) >= QUORUM:
                acked.append(version)
        return tuple(sorted(set(acked)))

    def cas_outcomes(self) -> Tuple[Mutation, ...]:
        """All CAS mutations, in flight or completed."""
        return tuple(m for m in tuple(self.pending) + tuple(self.history)
                     if m.kind == "cas")

    def superseded_by(self, version: int) -> bool:
        """True if any mutation newer than ``version`` exists anywhere."""
        if any(m.version > version for m in self.pending):
            return True
        if any(s > version for s in self.stored):
            return True
        if any(e > version for e in self.erased):
            return True
        return False
