"""A durable system of record (§6.4).

Google's durable storage ecosystem (Bigtable/Spanner-class systems over
persistent media) is the source of truth for R=2/Immutable corpora: the
cache is loaded from it, and cache misses fall back to it at persistent-
storage latency. The simulation models what matters to CliqueMap:

* reads cost media latency (and queue behind a bounded set of media
  channels), so they are orders of magnitude slower than an RMA GET;
* a Scan interface supports bulk corpus loading;
* the corpus is immutable once sealed, matching §6.4's mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..net import Host
from ..rpc import HandlerContext, RpcServer
from ..sim import Resource, Simulator


@dataclass
class StorageCostModel:
    """Persistent-media access costs."""

    media_latency: float = 1.5e-3        # seek/lookup on persistent media
    bytes_per_sec: float = 400e6         # media transfer bandwidth
    media_channels: int = 8              # concurrent accesses before queueing
    cpu_per_read: float = 10e-6          # storage-server CPU per request


class SystemOfRecord:
    """A durable KV store served over RPC."""

    def __init__(self, sim: Simulator, host: Host,
                 cost: Optional[StorageCostModel] = None,
                 name: str = "sor"):
        self.sim = sim
        self.host = host
        self.cost = cost or StorageCostModel()
        self.name = name
        self._data: Dict[bytes, bytes] = {}
        self._keys_ordered: List[bytes] = []
        self._sealed = False
        self._media = Resource(sim, capacity=self.cost.media_channels,
                               name=f"{name}.media")
        self.reads = 0
        self.rpc_server = RpcServer(sim, host, f"storage/{name}")
        self.rpc_server.register("Read", self._handle_read)
        self.rpc_server.register("Scan", self._handle_scan)

    # -- corpus management ------------------------------------------------

    def ingest(self, items: Dict[bytes, bytes]) -> None:
        """Write the corpus (build time; not on the serving path)."""
        if self._sealed:
            raise RuntimeError("corpus is sealed (immutable)")
        for key, value in items.items():
            if key not in self._data:
                self._keys_ordered.append(key)
            self._data[key] = value

    def seal(self) -> None:
        """Freeze the corpus: it is immutable from now on (§6.4)."""
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    def __len__(self) -> int:
        return len(self._data)

    # -- media access -----------------------------------------------------------

    def _media_read(self, nbytes: int) -> Generator:
        request = self._media.request()
        yield request
        try:
            yield self.sim.timeout(self.cost.media_latency +
                                   nbytes / self.cost.bytes_per_sec)
        finally:
            self._media.release(request)

    # -- RPC handlers -----------------------------------------------------------

    def _handle_read(self, payload, context: HandlerContext) -> Generator:
        key: bytes = payload["key"]
        yield from self.host.execute(self.cost.cpu_per_read,
                                     f"storage:{self.name}")
        value = self._data.get(key)
        yield from self._media_read(len(value) if value else 0)
        self.reads += 1
        if value is None:
            return {"found": False}
        context.response_size_override = len(value) + 32
        return {"found": True, "value": value}

    def _handle_scan(self, payload, context: HandlerContext) -> Generator:
        """Cursor-based bulk scan for corpus loading."""
        cursor: int = payload.get("cursor", 0)
        limit: int = payload.get("limit", 64)
        yield from self.host.execute(self.cost.cpu_per_read,
                                     f"storage:{self.name}")
        keys = self._keys_ordered[cursor:cursor + limit]
        entries: List[Tuple[bytes, bytes]] = [(k, self._data[k])
                                              for k in keys]
        total = sum(len(k) + len(v) for k, v in entries)
        yield from self._media_read(total)
        context.response_size_override = total + 64
        return {"entries": entries,
                "next_cursor": cursor + len(keys),
                "done": cursor + len(keys) >= len(self._keys_ordered)}
