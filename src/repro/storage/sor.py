"""A durable system of record (§6.4) with provisioned throughput.

Google's durable storage ecosystem (Bigtable/Spanner-class systems over
persistent media) is the source of truth for cached corpora: the cache
is loaded from it, cache misses fall back to it at persistent-storage
latency, and write-behind traffic drains into it. The simulation models
what matters to CliqueMap:

* reads cost media latency (and queue behind a bounded set of media
  channels), so they are orders of magnitude slower than an RMA GET;
* transfers additionally contend on one shared per-host media bus, so
  concurrent fetches divide — not multiply — the host's bandwidth;
* capacity is *provisioned* (HopperKV/DynamoDB-style read/write units):
  requests beyond the provisioned rate are throttled with a
  ``ProvisionedThroughputExceeded``-shaped reply instead of queueing
  without bound, and a ``brownout()`` hook (driven by ``repro.faults``)
  scales the provisioned rate down for a window;
* a Scan interface supports bulk corpus loading, and a Write interface
  absorbs write-behind flushes while the corpus is unfrozen;
* ``freeze()`` makes the corpus immutable, matching §6.4's mode.

``load``/``freeze`` are the canonical corpus-management surface (part
of :class:`~repro.storage.SystemOfRecordProtocol`); the pre-PR-6 names
``ingest``/``seal`` survive as deprecation shims that route through it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..core.errors import CliqueMapError
from ..core.resilience import RetryBudget
from ..net import Host
from ..rpc import HandlerContext, RpcServer
from ..sim import Resource, Simulator


@dataclass
class StorageCostModel:
    """Persistent-media access costs."""

    media_latency: float = 1.5e-3        # seek/lookup on persistent media
    bytes_per_sec: float = 400e6         # media transfer bandwidth
    media_channels: int = 8              # concurrent accesses before queueing
    cpu_per_read: float = 10e-6          # storage-server CPU per request


@dataclass
class ProvisionedThroughput:
    """HopperKV/DynamoDB-style provisioned capacity for one SoR.

    Reads and writes each draw from a token bucket refilled at
    ``read_units``/``write_units`` per simulated second; one unit covers
    ``unit_bytes`` of payload (a request costs ``ceil(size/unit_bytes)``,
    minimum one). The bucket holds up to ``burst_seconds`` worth of
    units, so short bursts ride on accumulated credit. Requests that
    find the bucket dry are throttled — the reply carries
    ``throttled=True`` (the wire shape of a
    ``ProvisionedThroughputExceeded`` error) and costs no media time.
    """

    read_units: float = 2000.0
    write_units: float = 1000.0
    burst_seconds: float = 2.0
    unit_bytes: int = 4096

    def __post_init__(self) -> None:
        for name in ("read_units", "write_units"):
            if getattr(self, name) <= 0:
                raise CliqueMapError(
                    f"ProvisionedThroughput.{name} must be > 0, "
                    f"got {getattr(self, name)!r}")
        if self.burst_seconds <= 0:
            raise CliqueMapError(
                "ProvisionedThroughput.burst_seconds must be > 0, "
                f"got {self.burst_seconds!r}")
        if self.unit_bytes < 1:
            raise CliqueMapError(
                "ProvisionedThroughput.unit_bytes must be >= 1, "
                f"got {self.unit_bytes!r}")


class SystemOfRecord:
    """A durable KV store served over RPC.

    ``throughput=None`` provisions unlimited capacity (the pre-PR-6
    behavior); pass a :class:`ProvisionedThroughput` to model a real
    quota. ``registry`` (or a later :meth:`bind_registry`) adds
    ``cliquemap_sor_requests_total{op,result}`` accounting.
    """

    def __init__(self, sim: Simulator, host: Host,
                 cost: Optional[StorageCostModel] = None,
                 name: str = "sor",
                 throughput: Optional[ProvisionedThroughput] = None,
                 registry=None):
        self.sim = sim
        self.host = host
        self.cost = cost or StorageCostModel()
        self.name = name
        self.throughput = throughput
        self._data: Dict[bytes, bytes] = {}
        self._keys_ordered: List[bytes] = []
        self._sealed = False
        self._media = Resource(sim, capacity=self.cost.media_channels,
                               name=f"{name}.media")
        # One media *bus* per host: seeks overlap across channels, but
        # transfers share the host's bandwidth, so concurrent fetches
        # contend instead of each enjoying the full bytes_per_sec.
        bus = getattr(host, "_storage_media_bus", None)
        if bus is None:
            bus = Resource(sim, capacity=1, name=f"{host.name}.media-bus")
            host._storage_media_bus = bus
        self._bus = bus
        self.reads = 0
        self.writes = 0
        self.throttled = 0
        self.write_log: List[bytes] = []     # applied Write keys, in order
        self._brownout_factor = 1.0
        self._brownout_token = None
        self.brownouts = 0
        if throughput is not None:
            self._read_bucket = RetryBudget(
                clock=lambda: sim.now,
                capacity=throughput.read_units * throughput.burst_seconds,
                fill_rate=throughput.read_units)
            self._write_bucket = RetryBudget(
                clock=lambda: sim.now,
                capacity=throughput.write_units * throughput.burst_seconds,
                fill_rate=throughput.write_units)
        else:
            self._read_bucket = self._write_bucket = None
        self.registry = None
        self._m_requests = None
        self._h_requests: Dict[Tuple[str, str], object] = {}
        if registry is not None:
            self.bind_registry(registry)
        self.rpc_server = RpcServer(sim, host, f"storage/{name}")
        self.rpc_server.register("Read", self._handle_read)
        self.rpc_server.register("Scan", self._handle_scan)
        self.rpc_server.register("Write", self._handle_write)

    # -- telemetry --------------------------------------------------------

    def bind_registry(self, registry) -> None:
        """Count requests into ``registry`` (idempotent per registry)."""
        if registry is self.registry:
            return
        self.registry = registry
        self._m_requests = registry.counter(
            "cliquemap_sor_requests_total",
            "SoR-side requests by op and result (ok/miss/throttled/sealed)")
        self._h_requests = {}

    def _count(self, op: str, result: str) -> None:
        if self._m_requests is None:
            return
        handle = self._h_requests.get((op, result))
        if handle is None:
            handle = self._h_requests[(op, result)] = \
                self._m_requests.labels(op=op, result=result)
        handle.inc()

    # -- corpus management ------------------------------------------------

    def load(self, items: Dict[bytes, bytes]) -> None:
        """Write a corpus batch (build time; not on the serving path)."""
        if self._sealed:
            raise RuntimeError("corpus is sealed (immutable)")
        for key, value in items.items():
            if key not in self._data:
                self._keys_ordered.append(key)
            self._data[key] = value

    def freeze(self) -> None:
        """Make the corpus immutable from now on (§6.4).

        A frozen SoR rejects Write RPCs with ``reason="sealed"``; leave
        it unfrozen when write-behind should drain into it.
        """
        self._sealed = True

    def ingest(self, items: Dict[bytes, bytes]) -> None:
        """Deprecated alias for :meth:`load` (pre-PR-6 surface)."""
        warnings.warn("SystemOfRecord.ingest() is deprecated; "
                      "use load()", DeprecationWarning, stacklevel=2)
        self.load(items)

    def seal(self) -> None:
        """Deprecated alias for :meth:`freeze` (pre-PR-6 surface)."""
        warnings.warn("SystemOfRecord.seal() is deprecated; "
                      "use freeze()", DeprecationWarning, stacklevel=2)
        self.freeze()

    @property
    def sealed(self) -> bool:
        return self._sealed

    def __len__(self) -> int:
        return len(self._data)

    # -- provisioned capacity ---------------------------------------------

    def _units(self, nbytes: int) -> float:
        unit = self.throughput.unit_bytes
        return float(max(1, -(-nbytes // unit)))

    def _admit(self, bucket: Optional[RetryBudget], nbytes: int) -> bool:
        if bucket is None:
            return True
        return bucket.try_spend(self._units(nbytes))

    def brownout(self, factor: float, duration: float = 0.0) -> None:
        """Scale provisioned capacity by ``factor`` (a degraded window).

        With ``duration > 0`` the previous capacity is restored after
        that many simulated seconds (the restore is keyed to this
        brownout, so a later overlapping brownout is not clobbered).
        Without provisioned throughput this is a recorded no-op.
        """
        if not 0.0 < factor <= 1.0:
            raise CliqueMapError(
                f"brownout factor must be in (0, 1], got {factor!r}")
        self.brownouts += 1
        token = self.brownouts
        self._brownout_token = token
        if self._read_bucket is None:
            return
        self._brownout_factor = factor
        base = self.throughput
        self._read_bucket.fill_rate = base.read_units * factor
        self._write_bucket.fill_rate = base.write_units * factor
        if duration > 0:
            def restore():
                if self._brownout_token == token:
                    self.restore()
            self.sim.call_in(duration, restore)

    def restore(self) -> None:
        """End any active brownout: provisioned rates back to 100%."""
        self._brownout_factor = 1.0
        self._brownout_token = None
        if self._read_bucket is not None:
            self._read_bucket.fill_rate = self.throughput.read_units
            self._write_bucket.fill_rate = self.throughput.write_units

    @property
    def browned_out(self) -> bool:
        return self._brownout_factor < 1.0

    # -- media access -----------------------------------------------------

    def _media_read(self, nbytes: int) -> Generator:
        request = self._media.request()
        yield request
        try:
            yield self.sim.timeout(self.cost.media_latency)
            if nbytes > 0:
                bus_request = self._bus.request()
                yield bus_request
                try:
                    yield self.sim.timeout(nbytes / self.cost.bytes_per_sec)
                finally:
                    self._bus.release(bus_request)
        finally:
            self._media.release(request)

    # -- RPC handlers -----------------------------------------------------

    def _handle_read(self, payload, context: HandlerContext) -> Generator:
        key: bytes = payload["key"]
        yield from self.host.execute(self.cost.cpu_per_read,
                                     f"storage:{self.name}")
        value = self._data.get(key)
        if not self._admit(self._read_bucket, len(value) if value else 0):
            self.throttled += 1
            self._count("read", "throttled")
            return {"found": False, "throttled": True,
                    "reason": "ProvisionedThroughputExceeded"}
        yield from self._media_read(len(value) if value else 0)
        self.reads += 1
        if value is None:
            self._count("read", "miss")
            return {"found": False}
        self._count("read", "ok")
        context.response_size_override = len(value) + 32
        return {"found": True, "value": value}

    def _handle_write(self, payload, context: HandlerContext) -> Generator:
        """Apply one write-behind flush entry (or a delete marker)."""
        key: bytes = payload["key"]
        delete: bool = bool(payload.get("delete"))
        value: Optional[bytes] = None if delete else payload["value"]
        yield from self.host.execute(self.cost.cpu_per_read,
                                     f"storage:{self.name}")
        if self._sealed:
            self._count("write", "sealed")
            return {"applied": False, "reason": "sealed"}
        nbytes = len(key) + (len(value) if value else 0)
        if not self._admit(self._write_bucket, nbytes):
            self.throttled += 1
            self._count("write", "throttled")
            return {"applied": False, "throttled": True,
                    "reason": "ProvisionedThroughputExceeded"}
        yield from self._media_read(nbytes)
        if delete:
            if key in self._data:
                del self._data[key]
                self._keys_ordered.remove(key)
        else:
            if key not in self._data:
                self._keys_ordered.append(key)
            self._data[key] = value
        self.writes += 1
        self.write_log.append(key)
        self._count("write", "ok")
        return {"applied": True}

    def _handle_scan(self, payload, context: HandlerContext) -> Generator:
        """Cursor-based bulk scan for corpus loading."""
        cursor: int = payload.get("cursor", 0)
        limit: int = payload.get("limit", 64)
        yield from self.host.execute(self.cost.cpu_per_read,
                                     f"storage:{self.name}")
        keys = self._keys_ordered[cursor:cursor + limit]
        entries: List[Tuple[bytes, bytes]] = [(k, self._data[k])
                                              for k in keys]
        total = sum(len(k) + len(v) for k, v in entries)
        if not self._admit(self._read_bucket, total):
            self.throttled += 1
            self._count("scan", "throttled")
            return {"entries": [], "next_cursor": cursor, "done": False,
                    "throttled": True,
                    "reason": "ProvisionedThroughputExceeded"}
        yield from self._media_read(total)
        self._count("scan", "ok")
        context.response_size_override = total + 64
        return {"entries": entries,
                "next_cursor": cursor + len(keys),
                "done": cursor + len(keys) >= len(self._keys_ordered)}
