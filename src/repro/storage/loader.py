"""Immutable-corpus loading: system of record -> R=2 cell (§6.4).

A loader job scans the sealed corpus out of the system of record in
batches and bulk-installs it into every replica of an R=2/Immutable
CliqueMap cell. All entries carry loader-nominated versions, and because
the corpus is immutable no further mutations follow — one replica serves
most GETs, the second covers failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

from ..core import Cell, TrueTime, VersionFactory
from ..rpc import Principal, RpcError, connect as rpc_connect
from .sor import SystemOfRecord

LOADER_CLIENT_ID = (1 << 24) + (1 << 20)


@dataclass
class LoadReport:
    keys_loaded: int = 0
    replicas_written: int = 0
    batches: int = 0
    duration: float = 0.0


class CorpusLoader:
    """Moves a sealed corpus into a cell, replica by replica."""

    def __init__(self, cell: Cell, sor: SystemOfRecord,
                 batch_size: int = 64, rpc_deadline: float = 1.0):
        self.cell = cell
        self.sor = sor
        self.sim = cell.sim
        self.batch_size = batch_size
        self.rpc_deadline = rpc_deadline
        self.versions = VersionFactory(LOADER_CLIENT_ID, TrueTime(self.sim))
        host = cell.add_local_host(f"host/loader-{sor.name}")
        self._sor_channel = rpc_connect(
            self.sim, cell.fabric, host, sor.rpc_server, Principal("loader"))
        self._backend_channels: Dict[str, object] = {}
        self._host = host

    def _channel_to_backend(self, task: str):
        channel = self._backend_channels.get(task)
        backend = self.cell.backend_by_task(task)
        if channel is None or channel.server is not backend.rpc_server:
            channel = rpc_connect(self.sim, self.cell.fabric, self._host,
                                  backend.rpc_server, Principal("loader"))
            self._backend_channels[task] = channel
        return channel

    def load(self) -> Generator:
        """Scan the corpus and install every KV at all its replicas."""
        if not self.sor.sealed:
            raise RuntimeError("freeze the corpus before loading (§6.4)")
        report = LoadReport()
        started = self.sim.now
        cursor = 0
        placement = self.cell.placement
        while True:
            reply = yield from self._sor_channel.call(
                "Scan", {"cursor": cursor, "limit": self.batch_size},
                deadline=self.rpc_deadline)
            if reply.get("throttled"):
                # Provisioned-throughput pushback: wait out the bucket
                # refill instead of spinning on the same cursor.
                yield self.sim.sleep(10e-3)
                continue
            report.batches += 1
            cursor = reply["next_cursor"]
            # Group the batch per destination task to amortize RPCs.
            per_task: Dict[str, List] = {}
            for key, value in reply["entries"]:
                version = self.versions.next()
                key_hash = placement.key_hash(key)
                for shard in placement.shards_for(key_hash):
                    task = self.cell.task_for_shard(shard)
                    per_task.setdefault(task, []).append(
                        (key, value, version.pack()))
                report.keys_loaded += 1
            for task, entries in per_task.items():
                size = sum(len(k) + len(v) + 32 for k, v, _ in entries)
                channel = self._channel_to_backend(task)
                try:
                    result = yield from channel.call(
                        "MigrateIn", {"entries": entries},
                        deadline=self.rpc_deadline, request_size=size)
                    report.replicas_written += result["applied"]
                except RpcError:
                    pass  # repairs reconcile gaps; immutable data is safe
            if reply["done"]:
                break
        report.duration = self.sim.now - started
        return report
