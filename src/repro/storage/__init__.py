"""Durable storage substrate: system of record + immutable-corpus loader."""

from .loader import CorpusLoader, LoadReport
from .sor import StorageCostModel, SystemOfRecord

__all__ = ["CorpusLoader", "LoadReport", "StorageCostModel",
           "SystemOfRecord"]
