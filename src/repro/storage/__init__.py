"""Durable storage substrate: system of record, miss-path, corpus loader.

The unified miss-path surface (PR 6):

* :class:`SystemOfRecordProtocol` — the structural contract
  ``cell.attach_sor`` accepts. Any object with an RPC server speaking
  Read/Scan/Write plus the corpus-management surface qualifies; our
  :class:`SystemOfRecord` is the reference implementation.
* :class:`MissPolicy` — validated knobs for read-through, negative
  caching, write-behind, and backfill admission control.
* :class:`ReadThroughCoordinator` — the pipeline itself, built by
  ``cell.attach_sor(sor, policy)``.
"""

from typing import Dict, Protocol, runtime_checkable

from .loader import CorpusLoader, LoadReport
from .policy import MissPolicy
from .readthrough import ReadThroughCoordinator
from .sor import ProvisionedThroughput, StorageCostModel, SystemOfRecord


@runtime_checkable
class SystemOfRecordProtocol(Protocol):
    """What ``cell.attach_sor`` requires of a system of record.

    Structural (checked with ``isinstance`` at attach time): a ``name``,
    an ``rpc_server`` handling ``Read``/``Scan``/``Write``, a ``sealed``
    flag, and the canonical corpus-management methods ``load`` and
    ``freeze``.
    """

    name: str
    rpc_server: object

    @property
    def sealed(self) -> bool:
        ...

    def load(self, items: Dict[bytes, bytes]) -> None:
        ...

    def freeze(self) -> None:
        ...


__all__ = ["CorpusLoader", "LoadReport", "MissPolicy",
           "ProvisionedThroughput", "ReadThroughCoordinator",
           "StorageCostModel", "SystemOfRecord", "SystemOfRecordProtocol"]
