"""The production cache-miss pipeline: cache ←(read-through)→ SoR.

A :class:`ReadThroughCoordinator` sits between every
:class:`~repro.core.CliqueMapClient` of a cell and an attached
:class:`~repro.storage.SystemOfRecord`, and implements the four herd
defenses a cache-fill path needs in production (§5 posture):

* **Single-flight coalescing** — at most one in-flight SoR fetch per
  key; concurrent missers park on the leader's flight and share its
  result, so a thundering herd on one viral key costs one media read.
* **Negative caching** — "the SoR does not have this key" is remembered
  for :attr:`MissPolicy.negative_ttl` seconds, so absent-key storms
  short-circuit before the RPC layer.
* **Write-behind** — acknowledged cache mutations land in a bounded
  dirty buffer and drain to the SoR in flush-budgeted sweeps; a full
  buffer degrades to synchronous write-through rather than losing the
  write. The buffer is authoritative while dirty: fetches for a dirty
  key are served from it without touching the SoR.
* **Backfill admission control** — warming traffic (:meth:`warm`)
  spends from a token bucket (the PR 2
  :class:`~repro.core.resilience.RetryBudget` machinery) and is *shed*
  when the bucket runs dry, so a cold-start storm cannot consume the
  SoR capacity foreground misses depend on.

Built by ``cell.attach_sor(sor, policy)`` — not constructed directly.
Fetch outcomes land in ``cliquemap_sor_fetches_total{result}``; the
dirty buffer depth in ``cliquemap_sor_dirty_buffer_depth``; flush
outcomes in ``cliquemap_sor_writebacks_total{result}``; cache fills in
``cliquemap_sor_fills_total{result}``.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..core.resilience import BackoffPolicy, RetryBudget
from ..rpc import Principal, RpcError, connect as rpc_connect
from ..sim import RandomStream

_MISSING = object()


class _Flight:
    """One in-flight leader fetch plus the waiters parked on it."""

    __slots__ = ("waiters", "dirtied")

    def __init__(self):
        self.waiters: List[object] = []
        # Set when a client write raced the fetch: the fetched (older)
        # value must not be filled over the acknowledged write.
        self.dirtied = False


class ReadThroughCoordinator:
    """Cell-wide miss-path coordinator between clients and one SoR."""

    def __init__(self, cell, sor, policy):
        self.cell = cell
        self.sim = cell.sim
        self.sor = sor
        self.policy = policy
        self.metrics = cell.metrics
        self._closed = False
        principal = Principal(f"sor@{cell.spec.name}")
        self.host = cell.add_local_host(
            f"host/sor-coordinator-{cell.spec.name}")
        self.channel = rpc_connect(cell.sim, cell.fabric, self.host,
                                   sor.rpc_server, principal)
        # Fills go through a real client so they pay the normal quorum
        # mutation path and version rules (a racing user SET simply
        # supersedes the fill). read_through=False: the fill client must
        # never recurse into this coordinator.
        self.fill_client = cell.make_client(principal=principal,
                                            read_through=False)
        cell.sim.run(until=cell.sim.process(self.fill_client.connect()))
        self._rand = RandomStream(cell.spec.seed, "sor-coordinator")
        self._flights: Dict[bytes, _Flight] = {}
        self._negative: Dict[bytes, float] = {}   # key -> expiry (sim s)
        self._dirty: Dict[bytes, Optional[bytes]] = {}  # None = delete
        self._flusher_started = False
        self.backfill_budget = RetryBudget(
            clock=lambda: self.sim.now,
            capacity=policy.backfill_budget,
            fill_rate=policy.backfill_fill_rate)

        self.stats = {
            "fetches": 0, "sor_hits": 0, "sor_misses": 0, "coalesced": 0,
            "negative_hits": 0, "buffered_serves": 0, "shed": 0,
            "throttled": 0, "errors": 0, "fills": 0, "writebacks": 0,
            "writebacks_throttled": 0, "writebacks_rejected": 0,
            "writebacks_dropped": 0, "sync_writes": 0, "buffer_overflows": 0,
        }
        self._m_fetches = self.metrics.counter(
            "cliquemap_sor_fetches_total",
            "Miss-path SoR fetch outcomes (hit/miss/negative/coalesced/"
            "buffered/throttled/shed/error)")
        self._h_fetches = {
            result: self._m_fetches.labels(result=result)
            for result in ("hit", "miss", "negative", "coalesced",
                           "buffered", "throttled", "shed", "error")}
        self._m_fills = self.metrics.counter(
            "cliquemap_sor_fills_total",
            "Cache fills after an SoR fetch, by mutation outcome")
        self._m_writebacks = self.metrics.counter(
            "cliquemap_sor_writebacks_total",
            "Write-behind flushes by result (ok/sync/throttled/rejected/"
            "dropped)")
        self._g_dirty = self.metrics.gauge(
            "cliquemap_sor_dirty_buffer_depth",
            "Dirty keys buffered awaiting a write-behind flush"
        ).labels(sor=sor.name)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def fetch(self, key: bytes, klass: str = "foreground") -> Generator:
        """Resolve a cache miss against the SoR.

        Returns ``(status, value)`` with status one of ``"hit"``
        (value fetched — and, unless a write raced it, filled into the
        cache), ``"miss"`` (SoR authoritatively lacks the key),
        ``"negative"`` (remembered-absent, no SoR traffic), ``"shed"``
        (backfill admission refused it), or ``"error"`` (SoR
        unreachable/throttled past the fetch deadline).

        ``klass="backfill"`` spends from the admission token bucket;
        foreground fetches never do.
        """
        policy = self.policy
        self.stats["fetches"] += 1
        if not policy.read_through:
            return ("miss", None)
        expiry = self._negative.get(key)
        if expiry is not None:
            if self.sim.now < expiry:
                self.stats["negative_hits"] += 1
                self._h_fetches["negative"].inc()
                return ("negative", None)
            self._negative.pop(key, None)
        dirty = self._dirty.get(key, _MISSING)
        if dirty is not _MISSING:
            # The dirty buffer holds the acknowledged latest value; the
            # SoR copy is stale until the flush lands.
            self.stats["buffered_serves"] += 1
            self._h_fetches["buffered"].inc()
            return ("hit", dirty) if dirty is not None else ("miss", None)
        if policy.coalesce:
            flight = self._flights.get(key)
            if flight is not None:
                self.stats["coalesced"] += 1
                self._h_fetches["coalesced"].inc()
                waiter = self.sim.event()
                flight.waiters.append(waiter)
                outcome = yield waiter
                return outcome
        if klass == "backfill" and not self.backfill_budget.try_spend():
            self.stats["shed"] += 1
            self._h_fetches["shed"].inc()
            return ("shed", None)
        flight = _Flight()
        if policy.coalesce:
            self._flights[key] = flight
        outcome = ("error", None)
        try:
            outcome = yield from self._leader_fetch(key, flight)
        finally:
            if policy.coalesce:
                self._flights.pop(key, None)
            for waiter in flight.waiters:
                waiter.succeed(outcome)
        return outcome

    def _leader_fetch(self, key: bytes, flight: _Flight) -> Generator:
        policy = self.policy
        deadline_at = self.sim.now + policy.fetch_deadline
        backoff = BackoffPolicy(policy.fetch_backoff,
                                policy.fetch_deadline / 4, self._rand)
        for attempt in range(policy.fetch_retries):
            if self.sim.now >= deadline_at:
                break
            try:
                reply = yield from self.channel.call(
                    "Read", {"key": key},
                    deadline=max(1e-6, deadline_at - self.sim.now),
                    request_size=len(key) + 32)
            except RpcError:
                reply = None
            if reply is not None and not reply.get("throttled"):
                if reply.get("found"):
                    value = reply["value"]
                    self.stats["sor_hits"] += 1
                    self._h_fetches["hit"].inc()
                    if not flight.dirtied:
                        yield from self._fill(key, value)
                    return ("hit", value)
                self.stats["sor_misses"] += 1
                self._h_fetches["miss"].inc()
                if policy.negative_ttl > 0:
                    self._note_negative(key)
                return ("miss", None)
            if reply is not None:
                self.stats["throttled"] += 1
                self._h_fetches["throttled"].inc()
            if attempt + 1 >= policy.fetch_retries:
                break
            delay = backoff.next_delay()
            if self.sim.now + delay >= deadline_at:
                break
            if delay:
                yield self.sim.sleep(delay)
        self.stats["errors"] += 1
        self._h_fetches["error"].inc()
        return ("error", None)

    def _fill(self, key: bytes, value: bytes) -> Generator:
        self.stats["fills"] += 1
        result = yield from self.fill_client.set(key, value)
        self._m_fills.labels(result=result.status.name.lower()).inc()

    def _note_negative(self, key: bytes) -> None:
        if len(self._negative) >= self.policy.negative_capacity:
            self._negative.pop(next(iter(self._negative)))
        self._negative[key] = self.sim.now + self.policy.negative_ttl

    # ------------------------------------------------------------------
    # Write path (write-behind)
    # ------------------------------------------------------------------

    def note_write(self, key: bytes, value: Optional[bytes]) -> bool:
        """Record an acknowledged cache mutation (``None`` = erase).

        Returns True when absorbed (buffered for write-behind, or
        write-behind is off and the SoR is managed out-of-band). False
        means the dirty buffer is full: the caller must propagate the
        write synchronously via :meth:`write_through`.
        """
        self._negative.pop(key, None)
        flight = self._flights.get(key)
        if flight is not None:
            flight.dirtied = True
        if not self.policy.write_behind:
            return True
        if key in self._dirty:
            self._dirty[key] = value          # keeps first-dirty order
            return True
        if len(self._dirty) >= self.policy.dirty_buffer_max:
            self.stats["buffer_overflows"] += 1
            return False
        self._dirty[key] = value
        self._g_dirty.set(len(self._dirty))
        self._ensure_flusher()
        return True

    def write_through(self, key: bytes, value: Optional[bytes]) -> Generator:
        """Synchronous SoR write: the full-buffer degradation path."""
        self.stats["sync_writes"] += 1
        ok = yield from self._sor_write(key, value)
        self._m_writebacks.labels(
            result="sync" if ok else "dropped").inc()

    def _ensure_flusher(self) -> None:
        if self._flusher_started:
            return
        self._flusher_started = True
        proc = self.sim.process(self._flush_loop(), name="sor-flusher")
        proc.defused = True

    def _flush_loop(self) -> Generator:
        while not self._closed:
            yield self.sim.sleep(self.policy.flush_interval)
            yield from self._flush_once(self.policy.flush_batch_max)

    def _flush_once(self, budget: int) -> Generator:
        """Flush up to ``budget`` dirty keys, oldest-first.

        A throttled write leaves its key at the front of the buffer and
        ends the sweep — the flush retries next interval at the SoR's
        provisioned pace instead of spinning against the quota.
        """
        flushed = 0
        while self._dirty and flushed < budget:
            key = next(iter(self._dirty))
            value = self._dirty[key]
            ok = yield from self._sor_write(key, value)
            if not ok:
                self.stats["writebacks_throttled"] += 1
                self._m_writebacks.labels(result="throttled").inc()
                break
            # Only retire the entry if it was not re-dirtied mid-flush.
            if key in self._dirty and self._dirty[key] is value:
                del self._dirty[key]
            flushed += 1
        self._g_dirty.set(len(self._dirty))
        return flushed

    def _sor_write(self, key: bytes, value: Optional[bytes]) -> Generator:
        """One SoR Write with bounded retry; False if still throttled."""
        if value is None:
            payload = {"key": key, "delete": True}
            size = len(key) + 64
        else:
            payload = {"key": key, "value": value}
            size = len(key) + len(value) + 64
        backoff = BackoffPolicy(self.policy.fetch_backoff,
                                self.policy.fetch_deadline / 4, self._rand)
        for attempt in range(self.policy.fetch_retries):
            try:
                reply = yield from self.channel.call(
                    "Write", payload, deadline=self.policy.fetch_deadline,
                    request_size=size)
            except RpcError:
                reply = None
            if reply is not None and reply.get("applied"):
                self.stats["writebacks"] += 1
                self._m_writebacks.labels(result="ok").inc()
                return True
            if reply is not None and not reply.get("throttled"):
                # Terminal rejection (e.g. a frozen corpus): drop the
                # entry — retrying cannot succeed.
                self.stats["writebacks_rejected"] += 1
                self._m_writebacks.labels(result="rejected").inc()
                return True
            if attempt + 1 >= self.policy.fetch_retries:
                break
            delay = backoff.next_delay()
            if delay:
                yield self.sim.sleep(delay)
        return False

    # ------------------------------------------------------------------
    # Backfill / warming
    # ------------------------------------------------------------------

    def warm(self, keys: Sequence[bytes], concurrency: int = 8) -> Generator:
        """Backfill ``keys`` through the miss pipeline as backfill-class
        traffic (admission-controlled and sheddable). Returns a dict of
        outcome counts."""
        report = {"requested": len(keys), "hits": 0, "misses": 0,
                  "shed": 0, "errors": 0}
        pending = list(keys)

        def worker():
            while pending:
                key = pending.pop()
                status, _value = yield from self.fetch(key, klass="backfill")
                if status == "hit":
                    report["hits"] += 1
                elif status in ("miss", "negative"):
                    report["misses"] += 1
                elif status == "shed":
                    report["shed"] += 1
                else:
                    report["errors"] += 1

        procs = [self.sim.process(worker())
                 for _ in range(max(1, min(concurrency, len(pending))))]
        yield self.sim.all_of(procs)
        return report

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def dirty_depth(self) -> int:
        return len(self._dirty)

    def coalescing_ratio(self) -> float:
        """Fraction of miss-path fetch requests that piggybacked on an
        already-in-flight leader (0.0 when nothing coalesced)."""
        coalesced = self.stats["coalesced"]
        total = self.stats["fetches"]
        return coalesced / total if total else 0.0

    def flush(self) -> Generator:
        """Drain the dirty buffer completely (close-time semantics)."""
        for _sweep in range(64):
            if not self._dirty:
                break
            flushed = yield from self._flush_once(len(self._dirty))
            if self._dirty and not flushed:
                # Persistently throttled: wait out one flush interval so
                # the provisioned buckets refill, then try again.
                yield self.sim.sleep(self.policy.flush_interval)

    def close(self) -> None:
        """Stop the flusher; drive a final drain when the sim is idle."""
        if self._closed:
            return
        if self._dirty and not getattr(self.sim, "_running", False):
            self.sim.run(until=self.sim.process(self.flush()))
        self._closed = True
