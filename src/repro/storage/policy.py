"""Miss-path policy: the knobs for the read-through pipeline.

A :class:`MissPolicy` is the public configuration surface for
``cell.attach_sor(sor, policy)``. It is validated eagerly at
construction (like :class:`~repro.core.ClientConfig`) so a bad knob
fails at setup time with a :class:`~repro.core.CliqueMapError`, not
mid-operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import CliqueMapError


@dataclass
class MissPolicy:
    """How cache misses flow to (and writes flow back to) the SoR.

    The four headline behaviors of the miss pipeline:

    * ``read_through`` — on a cache MISS, fetch the key from the
      attached system of record and fill the cache with the result.
    * ``negative_ttl`` — remember "the SoR does not have this key" for
      this many simulated seconds, so repeated misses on absent keys
      don't hammer persistent media. ``0`` disables negative caching.
    * ``write_behind`` — acknowledged cache mutations are buffered in a
      bounded dirty buffer and flushed to the SoR asynchronously under
      a flush budget. When the buffer is full, writes fall back to
      synchronous write-through.
    * ``backfill_budget`` — token-bucket admission control for
      backfill/warming fetches (``ReadThroughCoordinator.warm``):
      capacity of the bucket; ``<= 0`` disables admission control.
      Foreground (client-op) fetches never spend from this bucket, so a
      cold-start storm cannot starve the serving path.
    """

    read_through: bool = True
    negative_ttl: float = 0.5
    write_behind: bool = True
    backfill_budget: float = 64.0
    # Tokens per simulated second restored to the backfill bucket.
    backfill_fill_rate: float = 32.0
    # Single-flight request coalescing: one in-flight SoR fetch per key,
    # concurrent waiters park on it. Off only for ablation benchmarks.
    coalesce: bool = True
    # Write-behind dirty buffer: at most this many distinct dirty keys;
    # flushed oldest-first, up to flush_batch_max keys per sweep.
    dirty_buffer_max: int = 1024
    flush_interval: float = 10e-3
    flush_batch_max: int = 64
    # Leader-fetch behavior against the SoR (deadline covers retries).
    fetch_deadline: float = 50e-3
    fetch_retries: int = 3
    fetch_backoff: float = 1e-3
    # Bound on remembered-absent keys (oldest evicted first).
    negative_capacity: int = 4096

    def __post_init__(self) -> None:
        for name in ("negative_ttl", "backfill_fill_rate", "fetch_backoff"):
            if getattr(self, name) < 0:
                raise CliqueMapError(
                    f"MissPolicy.{name} must be >= 0, "
                    f"got {getattr(self, name)!r}")
        for name in ("flush_interval", "fetch_deadline"):
            if getattr(self, name) <= 0:
                raise CliqueMapError(
                    f"MissPolicy.{name} must be > 0, "
                    f"got {getattr(self, name)!r}")
        for name in ("dirty_buffer_max", "flush_batch_max", "fetch_retries",
                     "negative_capacity"):
            if getattr(self, name) < 1:
                raise CliqueMapError(
                    f"MissPolicy.{name} must be >= 1, "
                    f"got {getattr(self, name)!r}")
