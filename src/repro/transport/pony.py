"""Pony Express: a software-defined NIC with engines, scale-out, and SCAR.

Pony Express [31] runs network processing in *engines* — single-threaded
software loops that may time-multiplex one core or each scale out to their
own core in response to load (§7.2.4, Fig 15). Every op consumes engine
service time on both the initiating and serving host; queueing behind busy
engines is what raises tail latency before scale-out kicks in.

Because the NIC is software, CliqueMap installs a custom op: Scan-and-Read
(SCAR, §6.3). The serving engine scans the fetched Bucket for the wanted
KeyHash and follows the IndexEntry pointer to the DataEntry in the same
operation, returning bucket + datum in one round trip. The scan program is
a pure function over raw bucket bytes, supplied by CliqueMap at setup —
mirroring deployment of NIC-resident code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..net import Host
from ..sim import Resource, Simulator
from ..telemetry import NULL_SPAN
from .base import (RMA_REQUEST_BYTES, RMA_RESPONSE_HEADER_BYTES, Transport)
from .memory import RegionRevokedError, RmaOutOfBoundsError


@dataclass
class PonyCostModel:
    """Engine service times and messaging costs."""

    client_tx: float = 0.40e-6        # initiate an op
    client_rx: float = 0.45e-6        # process a completion
    server_read: float = 0.50e-6      # serve a one-sided read
    scar_scan: float = 0.18e-6        # extra bucket-scan work for SCAR
    batch_entry: float = 0.06e-6      # each extra entry of a coalesced read
    per_kilobyte: float = 0.012e-6    # payload handling per KB per side
    msg_thread_wakeup: float = 2.6e-6  # wake a server app thread (MSG mode)
    msg_app_cpu: float = 1.2e-6       # server application lookup code


@dataclass
class PonyScaleConfig:
    """Load-driven engine scale-out policy."""

    base_engines: int = 1
    max_engines: int = 4
    sample_interval: float = 200e-6
    scale_up_threshold: float = 0.80
    scale_down_threshold: float = 0.25


class PonyEngineGroup:
    """The Pony engines on one host: a served queue with dynamic capacity."""

    def __init__(self, sim: Simulator, host: Host,
                 scale: PonyScaleConfig):
        self.sim = sim
        self.host = host
        self.scale = scale
        self.engines = Resource(sim, capacity=scale.base_engines,
                                name=f"pony:{host.name}")
        # (time, engine_count) capacity changes, for the Fig 15 heatmap.
        self.scale_history: List[Tuple[float, int]] = [(sim.now,
                                                        scale.base_engines)]
        self._monitor_started = False

    @property
    def engine_count(self) -> int:
        return self.engines.capacity

    def serve(self, service_time: float) -> Generator:
        """Occupy an engine for ``service_time``; charges host CPU."""
        self._ensure_monitor()
        req = self.engines.request()
        yield req
        try:
            yield self.sim.timeout(service_time)
            self.host.charge_inline(service_time, "pony")
        finally:
            self.engines.release(req)

    def _ensure_monitor(self) -> None:
        if self._monitor_started:
            return
        self._monitor_started = True
        proc = self.sim.process(self._monitor(), name=f"pony-mon:{self.host.name}")
        proc.defused = True

    def _monitor(self) -> Generator:
        """Periodically resize the engine pool based on recent utilization."""
        ckpt = self.engines.checkpoint()
        while True:
            yield self.sim.timeout(self.scale.sample_interval)
            if not self.host.alive:
                continue
            util = self.engines.utilization_since(ckpt)
            ckpt = self.engines.checkpoint()
            cap = self.engines.capacity
            if util > self.scale.scale_up_threshold and \
                    cap < self.scale.max_engines:
                self.engines.set_capacity(cap + 1)
                self.scale_history.append((self.sim.now, cap + 1))
            elif util < self.scale.scale_down_threshold and \
                    cap > self.scale.base_engines:
                self.engines.set_capacity(cap - 1)
                self.scale_history.append((self.sim.now, cap - 1))

    def engines_at(self, t: float) -> int:
        """Engine count in effect at time ``t`` (for heatmap rendering)."""
        count = self.scale_history[0][1]
        for at, cap in self.scale_history:
            if at > t:
                break
            count = cap
        return count


class PonyTransport(Transport):
    """Software-NIC transport: reads, SCAR, and two-sided messaging."""

    name = "pony"
    supports_scar = True

    def __init__(self, sim, fabric, cost_model: Optional[PonyCostModel] = None,
                 scale: Optional[PonyScaleConfig] = None,
                 op_timeout: float = 200e-6):
        super().__init__(sim, fabric, op_timeout)
        self.cost = cost_model or PonyCostModel()
        self.scale = scale or PonyScaleConfig()
        self.engine_groups: Dict[str, PonyEngineGroup] = {}
        # host -> registered message handlers (two-sided MSG mode).
        self._msg_handlers: Dict[str, Dict[str, object]] = {}

    # -- engines ---------------------------------------------------------

    def attach(self, host: Host):
        endpoint = super().attach(host)
        if host.name not in self.engine_groups:
            self.engine_groups[host.name] = PonyEngineGroup(
                self.sim, host, self.scale)
        return endpoint

    def engine_group(self, host: Host) -> PonyEngineGroup:
        group = self.engine_groups.get(host.name)
        if group is None:
            self.attach(host)
            group = self.engine_groups[host.name]
        return group

    def _payload_cost(self, nbytes: int) -> float:
        return nbytes / 1024.0 * self.cost.per_kilobyte

    # -- one-sided read ----------------------------------------------------

    def read(self, client_host: Host, server_name: str, region_id: int,
             offset: int, size: int, trace=None) -> Generator:
        """One-sided read served by the remote Pony engines."""
        trace = trace or NULL_SPAN
        tx = trace.child("nic.tx")
        yield from self.engine_group(client_host).serve(self.cost.client_tx)
        tx.finish()
        yield from self.fabric.deliver(client_host,
                                       self._remote_host(server_name),
                                       RMA_REQUEST_BYTES, trace=trace)
        endpoint = yield from self._check_remote(server_name, client_host)
        server_group = self.engine_group(endpoint.host)
        serve_span = trace.child("backend.serve", host=server_name)
        yield from server_group.serve(self.cost.server_read +
                                      self._payload_cost(size))
        window = self._resolve_or_fail(endpoint, region_id)
        data = window.read(offset, size)  # the snapshot instant
        serve_span.finish()
        corrupted = yield from self.fabric.deliver(
            endpoint.host, client_host,
            len(data) + RMA_RESPONSE_HEADER_BYTES, trace=trace)
        data = self._maybe_corrupt(data, corrupted)
        rx = trace.child("nic.rx")
        yield from self.engine_group(client_host).serve(
            self.cost.client_rx + self._payload_cost(len(data)))
        rx.finish()
        self.counters.reads += 1
        self.counters.bytes_fetched += len(data)
        return data

    def read_multi(self, client_host: Host, server_name: str,
                   requests, trace=None) -> Generator:
        """Coalesced read: one engine op per side serves the whole batch.

        The engine dispatch (``client_tx``/``server_read``/``client_rx``)
        is paid once; each extra entry adds only ``batch_entry`` scan work
        plus payload handling, which is where the amortization of §7.1
        comes from.
        """
        if not requests:
            return []
        trace = trace or NULL_SPAN
        n = len(requests)
        span = trace.child("nic.batch", entries=n)
        req_bytes = self._batch_request_bytes(n)
        tx_cost = self.cost.client_tx + self._payload_cost(req_bytes)
        yield from self.engine_group(client_host).serve(tx_cost)
        yield from self.fabric.deliver(client_host,
                                       self._remote_host(server_name),
                                       req_bytes, parts=n, trace=span)
        endpoint = yield from self._check_remote(server_name, client_host)
        server_group = self.engine_group(endpoint.host)
        serve_span = span.child("backend.serve", host=server_name, op="batch")
        total_size = sum(size for _r, _o, size in requests)
        serve_cost = (self.cost.server_read +
                      self.cost.batch_entry * (n - 1) +
                      self._payload_cost(total_size))
        yield from server_group.serve(serve_cost)
        results = self._read_entries(endpoint, requests)
        serve_span.finish()
        resp_bytes = self._batch_response_bytes(results)
        corrupted = yield from self.fabric.deliver(
            endpoint.host, client_host, resp_bytes, parts=n, trace=span)
        results = self._corrupt_largest(results, corrupted)
        rx_cost = self.cost.client_rx + self._payload_cost(resp_bytes)
        yield from self.engine_group(client_host).serve(rx_cost)
        span.finish()
        self.counters.bytes_fetched += sum(
            len(r) for r in results if isinstance(r, bytes))
        self._observe_batch(n, tx_cost + serve_cost + rx_cost)
        return results

    # -- SCAR ---------------------------------------------------------------

    def scar(self, client_host: Host, server_name: str,
             index_region_id: int, bucket_offset: int, bucket_size: int,
             key_hash: bytes, trace=None) -> Generator:
        """Scan-and-Read: returns ``(bucket_bytes, data_bytes_or_None)``.

        The serving engine fetches the bucket, runs the installed scan
        program against ``key_hash``, and — on a hit — follows the pointer
        to the DataEntry, all within one network round trip.
        """
        trace = trace or NULL_SPAN
        tx = trace.child("nic.tx")
        yield from self.engine_group(client_host).serve(self.cost.client_tx)
        tx.finish()
        yield from self.fabric.deliver(client_host,
                                       self._remote_host(server_name),
                                       RMA_REQUEST_BYTES + len(key_hash),
                                       trace=trace)
        endpoint = yield from self._check_remote(server_name, client_host)
        if endpoint.scar_program is None:
            raise RegionRevokedError(index_region_id)

        server_group = self.engine_group(endpoint.host)
        serve_span = trace.child("backend.serve", host=server_name, op="scar")
        yield from server_group.serve(self.cost.server_read +
                                      self.cost.scar_scan +
                                      self._payload_cost(bucket_size))
        window = self._resolve_or_fail(endpoint, index_region_id)
        bucket = window.read(bucket_offset, bucket_size)

        data: Optional[bytes] = None
        pointer = endpoint.scar_program(bucket, key_hash)
        if pointer is not None:
            data_region_id, data_offset, data_size = pointer
            try:
                data_window = endpoint.resolve(data_region_id)
                yield from server_group.serve(self._payload_cost(data_size))
                data = data_window.read(data_offset, data_size)
            except (RegionRevokedError, RmaOutOfBoundsError):
                # Pointer raced with a reshape/eviction; return just the
                # bucket — the client validates and retries.
                data = None
        serve_span.finish()

        resp_bytes = (len(bucket) + (len(data) if data else 0) +
                      RMA_RESPONSE_HEADER_BYTES)
        corrupted = yield from self.fabric.deliver(endpoint.host, client_host,
                                                   resp_bytes, trace=trace)
        if corrupted:
            # The flip lands in whichever section dominates the response:
            # the data copy when the scan hit, the bucket otherwise.
            if data:
                data = self._maybe_corrupt(data, corrupted)
            else:
                bucket = self._maybe_corrupt(bucket, corrupted)
        rx = trace.child("nic.rx")
        yield from self.engine_group(client_host).serve(
            self.cost.client_rx + self._payload_cost(resp_bytes))
        rx.finish()
        self.counters.scars += 1
        self.counters.bytes_fetched += resp_bytes
        return bucket, data

    # -- two-sided messaging (MSG lookup strategy) ----------------------------

    def register_message_handler(self, host: Host, name: str,
                                 handler) -> None:
        """``handler(request_payload) -> (response_payload, response_bytes)``.

        The handler runs on a woken application thread (host CPU), modeling
        the two-sided lookup strategy of Fig 7.
        """
        self.attach(host)
        self._msg_handlers.setdefault(host.name, {})[name] = handler

    def message(self, client_host: Host, server_name: str, name: str,
                request_bytes: int, request_payload, trace=None) -> Generator:
        """Send a two-sided message and await the application's reply."""
        trace = trace or NULL_SPAN
        tx = trace.child("nic.tx")
        yield from self.engine_group(client_host).serve(
            self.cost.client_tx + self._payload_cost(request_bytes))
        tx.finish()
        yield from self.fabric.deliver(client_host,
                                       self._remote_host(server_name),
                                       request_bytes, trace=trace)
        endpoint = yield from self._check_remote(server_name, client_host)
        handlers = self._msg_handlers.get(server_name, {})
        if name not in handlers:
            raise RegionRevokedError(-1)

        server_host = endpoint.host
        server_group = self.engine_group(server_host)
        serve_span = trace.child("backend.serve", host=server_name, op="msg")
        yield from server_group.serve(self.cost.server_read +
                                      self._payload_cost(request_bytes))
        # Wake an application thread and run the handler on host CPU —
        # the expensive part two-sided designs pay (§6.3).
        app_span = serve_span.child("app-thread")
        yield from server_host.execute(self.cost.msg_thread_wakeup +
                                       self.cost.msg_app_cpu, "msg-app")
        response_payload, response_bytes = handlers[name](request_payload)
        app_span.finish()
        yield from server_group.serve(self.cost.client_tx +
                                      self._payload_cost(response_bytes))
        serve_span.finish()
        yield from self.fabric.deliver(server_host, client_host,
                                       response_bytes +
                                       RMA_RESPONSE_HEADER_BYTES, trace=trace)
        rx = trace.child("nic.rx")
        yield from self.engine_group(client_host).serve(
            self.cost.client_rx + self._payload_cost(response_bytes))
        rx.finish()
        self.counters.messages += 1
        return response_payload

    def _remote_host(self, server_name: str) -> Host:
        endpoint = self.endpoints.get(server_name)
        if endpoint is not None:
            return endpoint.host
        return self.fabric.host(server_name)
