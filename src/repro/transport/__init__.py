"""RMA transports: memory regions, generic RDMA, Pony Express, 1RMA."""

from .base import (RMA_REQUEST_BYTES, RMA_RESPONSE_HEADER_BYTES, Transport,
                   TransportCounters)
from .memory import (Arena, MemoryRegion, RegionRevokedError,
                     RegistrationCostModel, RemoteHostDownError, RmaEndpoint,
                     RmaError, RmaOutOfBoundsError, next_region_id)
from .onerma import OneRmaCostModel, OneRmaTransport
from .pony import (PonyCostModel, PonyEngineGroup, PonyScaleConfig,
                   PonyTransport)
from .rdma import RdmaCostModel, RdmaTransport

__all__ = [
    "RMA_REQUEST_BYTES", "RMA_RESPONSE_HEADER_BYTES", "Transport",
    "TransportCounters",
    "Arena", "MemoryRegion", "RegionRevokedError", "RegistrationCostModel",
    "RemoteHostDownError", "RmaEndpoint", "RmaError", "RmaOutOfBoundsError",
    "next_region_id",
    "OneRmaCostModel", "OneRmaTransport",
    "PonyCostModel", "PonyEngineGroup", "PonyScaleConfig", "PonyTransport",
    "RdmaCostModel", "RdmaTransport",
]
