"""1RMA transport: an all-hardware serving path with PCIe modeling.

1RMA (§7.2.4) trades programmability for a fully-hardware datapath: no
SCAR primitive (each GET is 2xR, two fabric RTTs), but a heavily-optimized
NIC/memory interaction so the application-visible RTT is lower than
packet-oriented systems and — crucially — the serving path has *no
software bottleneck*, so latency stays flat as load ramps (Fig 16/17).

The NIC emits *command timestamps* measuring combined fabric + remote-PCIe
latency per op, which is what Figure 16 plots as a heatmap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Tuple

from ..net import Host
from ..sim import Resource
from ..telemetry import NULL_SPAN
from .base import RMA_REQUEST_BYTES, RMA_RESPONSE_HEADER_BYTES, Transport


@dataclass
class OneRmaCostModel:
    """Timing/CPU constants for the 1RMA path."""

    client_submit_cpu: float = 0.30e-6     # command submission
    client_complete_cpu: float = 0.30e-6   # completion handling
    server_nic_latency: float = 0.5e-6     # NIC command execution
    pcie_base_latency: float = 0.6e-6      # PCIe round trip at server
    pcie_bytes_per_sec: float = 16e9       # server PCIe read bandwidth
    # 1RMA's explicit congestion control: each initiator NIC caps its
    # outstanding solicited bytes; ops beyond the window queue locally.
    solicitation_window_ops: int = 64


class OneRmaTransport(Transport):
    """One-sided reads over the 1RMA hardware path, with NIC timestamps."""

    name = "1rma"
    supports_scar = False

    def __init__(self, sim, fabric, cost_model: OneRmaCostModel = None,
                 op_timeout: float = 200e-6,
                 record_timestamps: bool = True):
        super().__init__(sim, fabric, op_timeout)
        self.cost = cost_model or OneRmaCostModel()
        self.record_timestamps = record_timestamps
        # (completion_time, fabric+pcie_latency) samples, as emitted by
        # the NIC's command executor (Fig 16).
        self.command_timestamps: List[Tuple[float, float]] = []
        self._windows = {}  # per-initiator solicitation windows

    def _window_for(self, host: Host) -> Resource:
        window = self._windows.get(host.name)
        if window is None:
            window = Resource(self.sim,
                              capacity=self.cost.solicitation_window_ops,
                              name=f"1rma-window:{host.name}")
            self._windows[host.name] = window
        return window

    def read(self, client_host: Host, server_name: str, region_id: int,
             offset: int, size: int, trace=None) -> Generator:
        """Perform a one-sided 1RMA read; returns the snapshot bytes."""
        trace = trace or NULL_SPAN
        tx = trace.child("nic.tx")
        yield from client_host.execute(self.cost.client_submit_cpu,
                                       "rma-client")
        window = self._window_for(client_host)
        slot = window.request()
        yield slot
        tx.finish()
        try:
            return (yield from self._read_solicited(
                client_host, server_name, region_id, offset, size, trace))
        finally:
            window.release(slot)

    def _read_solicited(self, client_host: Host, server_name: str,
                        region_id: int, offset: int,
                        size: int, trace=NULL_SPAN) -> Generator:
        issued_at = self.sim.now  # NIC-side measurement starts here
        yield from self.fabric.deliver(client_host,
                                       self._remote_host(server_name),
                                       RMA_REQUEST_BYTES, trace=trace)
        endpoint = yield from self._check_remote(server_name, client_host)
        serve_span = trace.child("backend.serve", host=server_name)
        yield self.sim.timeout(self.cost.server_nic_latency)
        window = self._resolve_or_fail(endpoint, region_id)
        # PCIe read of the payload out of server memory.
        yield self.sim.timeout(self.cost.pcie_base_latency +
                               size / self.cost.pcie_bytes_per_sec)
        data = window.read(offset, size)  # the snapshot instant
        serve_span.finish()
        corrupted = yield from self.fabric.deliver(
            endpoint.host, client_host,
            len(data) + RMA_RESPONSE_HEADER_BYTES, trace=trace)
        data = self._maybe_corrupt(data, corrupted)
        if self.record_timestamps:
            self.command_timestamps.append(
                (self.sim.now, self.sim.now - issued_at))
        rx = trace.child("nic.rx")
        yield from client_host.execute(self.cost.client_complete_cpu,
                                       "rma-client")
        rx.finish()
        self.counters.reads += 1
        self.counters.bytes_fetched += len(data)
        return data

    def read_multi(self, client_host: Host, server_name: str,
                   requests, trace=None) -> Generator:
        """Coalesced read: one command, one window slot, one PCIe transaction.

        The NIC executes the whole batch as a single solicited command:
        one ``pcie_base_latency`` plus the summed payload over PCIe
        bandwidth, and a single command timestamp — batching preserves
        the Fig 16 measurement semantics (one command, one sample).
        """
        if not requests:
            return []
        trace = trace or NULL_SPAN
        n = len(requests)
        span = trace.child("nic.batch", entries=n)
        submit_cost = self.cost.client_submit_cpu
        yield from client_host.execute(submit_cost, "rma-client")
        window = self._window_for(client_host)
        slot = window.request()
        yield slot
        try:
            issued_at = self.sim.now
            yield from self.fabric.deliver(client_host,
                                           self._remote_host(server_name),
                                           self._batch_request_bytes(n),
                                           parts=n, trace=span)
            endpoint = yield from self._check_remote(server_name, client_host)
            serve_span = span.child("backend.serve", host=server_name,
                                    op="batch")
            yield self.sim.timeout(self.cost.server_nic_latency)
            total_size = sum(size for _r, _o, size in requests)
            yield self.sim.timeout(self.cost.pcie_base_latency +
                                   total_size / self.cost.pcie_bytes_per_sec)
            results = self._read_entries(endpoint, requests)
            serve_span.finish()
            corrupted = yield from self.fabric.deliver(
                endpoint.host, client_host,
                self._batch_response_bytes(results), parts=n, trace=span)
            results = self._corrupt_largest(results, corrupted)
            if self.record_timestamps:
                self.command_timestamps.append(
                    (self.sim.now, self.sim.now - issued_at))
        finally:
            window.release(slot)
        complete_cost = self.cost.client_complete_cpu
        yield from client_host.execute(complete_cost, "rma-client")
        span.finish()
        self.counters.bytes_fetched += sum(
            len(r) for r in results if isinstance(r, bytes))
        self._observe_batch(n, submit_cost + complete_cost)
        return results

    def _remote_host(self, server_name: str) -> Host:
        endpoint = self.endpoints.get(server_name)
        if endpoint is not None:
            return endpoint.host
        return self.fabric.host(server_name)
