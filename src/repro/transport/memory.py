"""RMA-accessible memory: arenas, windows, registration, revocation.

Regions hold *real bytes* (``bytearray``). An RMA read snapshots those
bytes at one simulated instant, so torn reads — an RMA read observing the
intermediate state of a concurrent multi-step server-side mutation — arise
from genuine interleavings, exactly the hazard CliqueMap's self-validating
responses exist to catch (§3, §5.3).

The data-region reshaping design of §4.1 is modeled faithfully:

* an :class:`Arena` reserves a large *virtual* range but only a populated
  prefix is backed by (accounted) DRAM;
* growth creates a second, larger, *overlapping* :class:`MemoryRegion`
  window onto the same arena and advertises it under a new region id;
* old windows keep working until explicitly revoked, so clients converge
  to the new window over time, perhaps after a retry.

Registration cost (OS + NIC page-table work) is charged when windows are
created, which is why CliqueMap does that work off the critical path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional


class RmaError(Exception):
    """Base class for RMA transport failures."""

    retryable = True


class RegionRevokedError(RmaError):
    """The target region id is revoked or unknown at the endpoint."""

    def __init__(self, region_id: int):
        super().__init__(f"region {region_id} is revoked or unknown")
        self.region_id = region_id


class RmaOutOfBoundsError(RmaError):
    """An access fell outside the window's registered extent."""


class RemoteHostDownError(RmaError):
    """The remote host is crashed/unreachable; surfaced as an op timeout."""


_region_ids = itertools.count(1)


def next_region_id() -> int:
    return next(_region_ids)


@dataclass
class RegistrationCostModel:
    """Cost of registering memory for RMA (OS + NIC translation tables)."""

    base_seconds: float = 50e-6
    per_page_seconds: float = 0.25e-6
    page_bytes: int = 4096

    def registration_time(self, nbytes: int) -> float:
        pages = max(1, (nbytes + self.page_bytes - 1) // self.page_bytes)
        return self.base_seconds + pages * self.per_page_seconds


class Arena:
    """A virtually-contiguous buffer, only partially populated by DRAM.

    ``virtual_limit`` is the mmap(PROT_NONE) reservation; ``populated``
    bytes are actually backed (and counted as DRAM used).
    """

    def __init__(self, initial_bytes: int, virtual_limit: int):
        if initial_bytes < 0 or initial_bytes > virtual_limit:
            raise ValueError("initial size must be within the virtual limit")
        self.virtual_limit = virtual_limit
        self._buf = bytearray(initial_bytes)

    @property
    def populated(self) -> int:
        """Bytes of DRAM currently backing the arena."""
        return len(self._buf)

    def grow(self, new_size: int) -> None:
        """Populate the arena out to ``new_size`` bytes."""
        if new_size < self.populated:
            raise ValueError("grow cannot shrink; build a new arena instead")
        if new_size > self.virtual_limit:
            raise ValueError(
                f"grow to {new_size} exceeds virtual limit {self.virtual_limit}")
        self._buf.extend(bytes(new_size - self.populated))

    # Raw access used by windows; offsets are arena-absolute.

    def read(self, offset: int, size: int) -> bytes:
        if offset < 0 or size < 0 or offset + size > self.populated:
            raise RmaOutOfBoundsError(
                f"read [{offset}, {offset + size}) beyond populated "
                f"{self.populated}")
        return bytes(self._buf[offset:offset + size])

    def write(self, offset: int, data: bytes) -> None:
        if offset < 0 or offset + len(data) > self.populated:
            raise RmaOutOfBoundsError(
                f"write [{offset}, {offset + len(data)}) beyond populated "
                f"{self.populated}")
        self._buf[offset:offset + len(data)] = data


class MemoryRegion:
    """A registered RMA window onto an arena.

    Multiple windows may overlap the same arena (reshaping); each has its
    own region id and revocation state.
    """

    def __init__(self, arena: Arena, limit: Optional[int] = None,
                 region_id: Optional[int] = None):
        self.arena = arena
        self.limit = arena.populated if limit is None else limit
        if self.limit > arena.virtual_limit:
            raise ValueError("window limit exceeds arena virtual limit")
        self.region_id = next_region_id() if region_id is None else region_id
        self.revoked = False

    def read(self, offset: int, size: int) -> bytes:
        """Snapshot ``size`` bytes at this simulated instant."""
        if self.revoked:
            raise RegionRevokedError(self.region_id)
        if offset < 0 or offset + size > self.limit:
            raise RmaOutOfBoundsError(
                f"read [{offset}, {offset + size}) beyond window {self.limit}")
        return self.arena.read(offset, size)

    def write(self, offset: int, data: bytes) -> None:
        """Server-local write (backends mutate their own memory directly)."""
        if self.revoked:
            raise RegionRevokedError(self.region_id)
        if offset < 0 or offset + len(data) > self.limit:
            raise RmaOutOfBoundsError(
                f"write [{offset}, {offset + len(data)}) beyond window "
                f"{self.limit}")
        self.arena.write(offset, data)

    def revoke(self) -> None:
        self.revoked = True


class RmaEndpoint:
    """Server-side RMA attachment: the windows a host exposes.

    The optional ``scar_program`` is the small computation CliqueMap
    installs into the software NIC for Scan-and-Read (§6.3); it is a pure
    function over raw bucket bytes, mirroring a NIC-resident program.
    """

    def __init__(self, host):
        self.host = host
        self._windows: Dict[int, MemoryRegion] = {}
        self.scar_program = None

    def expose(self, window: MemoryRegion) -> MemoryRegion:
        self._windows[window.region_id] = window
        return window

    def revoke(self, window: MemoryRegion) -> None:
        window.revoke()
        self._windows.pop(window.region_id, None)

    def resolve(self, region_id: int) -> MemoryRegion:
        window = self._windows.get(region_id)
        if window is None or window.revoked:
            raise RegionRevokedError(region_id)
        return window

    def install_scar_program(self, program) -> None:
        """``program(bucket_bytes, key_hash) -> (region_id, offset, size) | None``."""
        self.scar_program = program

    @property
    def window_count(self) -> int:
        return len(self._windows)
