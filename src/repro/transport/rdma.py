"""Generic hardware RDMA transport.

The baseline one-sided read path: a small client CPU cost to post the
work request and reap the completion, a fixed NIC/DMA latency at the
server with *no server CPU*, and payload serialization through both NICs.
2xR GETs are "generic and viable on a variety of transports" (§6.3); this
is the plainest of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..net import Host
from ..telemetry import NULL_SPAN
from .base import (RMA_REQUEST_BYTES, RMA_RESPONSE_HEADER_BYTES, Transport)


@dataclass
class RdmaCostModel:
    """Timing/CPU constants for the hardware RDMA path."""

    client_post_cpu: float = 0.35e-6   # post work request
    client_poll_cpu: float = 0.35e-6   # reap completion
    server_nic_latency: float = 1.4e-6  # NIC processing + DMA at server
    batch_entry_latency: float = 0.2e-6  # extra DMA per coalesced entry


class RdmaTransport(Transport):
    """One-sided reads with a hardware server path."""

    name = "rdma"
    supports_scar = False

    def __init__(self, sim, fabric, cost_model: RdmaCostModel = None,
                 op_timeout: float = 200e-6):
        super().__init__(sim, fabric, op_timeout)
        self.cost = cost_model or RdmaCostModel()

    def read(self, client_host: Host, server_name: str, region_id: int,
             offset: int, size: int, trace=None) -> Generator:
        """Perform a one-sided read; returns the snapshot bytes."""
        trace = trace or NULL_SPAN
        tx = trace.child("nic.tx")
        yield from client_host.execute(self.cost.client_post_cpu,
                                       "rma-client")
        tx.finish()
        yield from self.fabric.deliver(client_host,
                                       self._remote_host(server_name),
                                       RMA_REQUEST_BYTES, trace=trace)
        endpoint = yield from self._check_remote(server_name, client_host)
        # NIC processing + DMA at the server; no server CPU involved.
        serve_span = trace.child("backend.serve", host=server_name)
        yield self.sim.timeout(self.cost.server_nic_latency)
        window = self._resolve_or_fail(endpoint, region_id)
        data = window.read(offset, size)  # the snapshot instant
        serve_span.finish()
        corrupted = yield from self.fabric.deliver(
            endpoint.host, client_host,
            len(data) + RMA_RESPONSE_HEADER_BYTES, trace=trace)
        data = self._maybe_corrupt(data, corrupted)
        rx = trace.child("nic.rx")
        yield from client_host.execute(self.cost.client_poll_cpu,
                                       "rma-client")
        rx.finish()
        self.counters.reads += 1
        self.counters.bytes_fetched += len(data)
        return data

    def read_multi(self, client_host: Host, server_name: str,
                   requests, trace=None) -> Generator:
        """Coalesced read: one posted work request covers the batch.

        The client pays one post and one poll regardless of batch size;
        the server NIC pipelines the extra DMAs at ``batch_entry_latency``
        each instead of a full per-op NIC traversal.
        """
        if not requests:
            return []
        trace = trace or NULL_SPAN
        n = len(requests)
        span = trace.child("nic.batch", entries=n)
        post_cost = self.cost.client_post_cpu
        yield from client_host.execute(post_cost, "rma-client")
        yield from self.fabric.deliver(client_host,
                                       self._remote_host(server_name),
                                       self._batch_request_bytes(n),
                                       parts=n, trace=span)
        endpoint = yield from self._check_remote(server_name, client_host)
        serve_span = span.child("backend.serve", host=server_name, op="batch")
        yield self.sim.timeout(self.cost.server_nic_latency +
                               self.cost.batch_entry_latency * (n - 1))
        results = self._read_entries(endpoint, requests)
        serve_span.finish()
        corrupted = yield from self.fabric.deliver(
            endpoint.host, client_host,
            self._batch_response_bytes(results), parts=n, trace=span)
        results = self._corrupt_largest(results, corrupted)
        poll_cost = self.cost.client_poll_cpu
        yield from client_host.execute(poll_cost, "rma-client")
        span.finish()
        self.counters.bytes_fetched += sum(
            len(r) for r in results if isinstance(r, bytes))
        self._observe_batch(n, post_cost + poll_cost)
        return results

    def _remote_host(self, server_name: str) -> Host:
        endpoint = self.endpoints.get(server_name)
        if endpoint is not None:
            return endpoint.host
        # Unknown endpoint: bytes leave the client anyway; use any host
        # object for byte accounting by falling back to the fabric map.
        return self.fabric.host(server_name)
