"""Transport abstraction: one-sided reads over the simulated fabric.

Concrete transports (generic RDMA, Pony Express, 1RMA) share the endpoint
registry and the failure envelope: reads against a crashed host time out
with :class:`RemoteHostDownError`; reads against revoked/unknown regions
fail with :class:`RegionRevokedError` carried back to the client, which is
what triggers CliqueMap's RPC-based re-handshake retry path (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from ..net import Fabric, Host, NetworkDropError
from ..sim import Simulator
from .memory import RegionRevokedError, RemoteHostDownError, RmaEndpoint

RMA_REQUEST_BYTES = 64          # a one-sided read command on the wire
RMA_RESPONSE_HEADER_BYTES = 32  # completion/validation header on responses


@dataclass
class TransportCounters:
    """Operation counters per transport."""

    reads: int = 0
    scars: int = 0
    messages: int = 0
    failures: int = 0
    corrupted: int = 0
    bytes_fetched: int = 0


class Transport:
    """Base transport: endpoint registry + failure handling."""

    name = "base"
    supports_scar = False

    def __init__(self, sim: Simulator, fabric: Fabric,
                 op_timeout: float = 200e-6):
        self.sim = sim
        self.fabric = fabric
        self.op_timeout = op_timeout
        self.endpoints: Dict[str, RmaEndpoint] = {}
        self.counters = TransportCounters()

    def attach(self, host: Host) -> RmaEndpoint:
        """Expose a host for RMA access; returns its endpoint."""
        endpoint = self.endpoints.get(host.name)
        if endpoint is None:
            endpoint = RmaEndpoint(host)
            self.endpoints[host.name] = endpoint
        return endpoint

    def detach(self, host: Host) -> None:
        self.endpoints.pop(host.name, None)

    def endpoint(self, host_name: str) -> RmaEndpoint:
        try:
            return self.endpoints[host_name]
        except KeyError:
            raise RemoteHostDownError(
                f"no RMA endpoint for host {host_name}") from None

    def _check_remote(self, server_name: str,
                      client_host: Host = None) -> RmaEndpoint:
        """Fail like a timed-out op when the remote is dead (a generator).

        RMA protocols are not applicable across the WAN (Table 1): a
        cross-zone op fails immediately, pushing clients to the RPC
        lookup fallback."""
        endpoint = self.endpoints.get(server_name)
        if endpoint is None or not endpoint.host.alive:
            self.counters.failures += 1
            yield self.sim.timeout(self.op_timeout)
            raise RemoteHostDownError(f"op to {server_name} timed out")
        if client_host is not None and \
                getattr(client_host, "zone", "local") != \
                getattr(endpoint.host, "zone", "local"):
            self.counters.failures += 1
            raise RemoteHostDownError(
                f"RMA to {server_name} crosses zones; use RPC for WAN")
        return endpoint

    def read(self, client_host: Host, server_name: str, region_id: int,
             offset: int, size: int, trace=None) -> Generator:
        """One-sided read; subclasses implement the timing.

        ``trace`` (an optional telemetry span) receives fabric/server
        child spans so an op can be decomposed layer by layer.
        """
        raise NotImplementedError

    def _resolve_or_fail(self, endpoint: RmaEndpoint, region_id: int):
        try:
            return endpoint.resolve(region_id)
        except RegionRevokedError:
            self.counters.failures += 1
            raise

    def _maybe_corrupt(self, data: bytes, corrupted) -> bytes:
        """Flip a payload byte when the response delivery was corrupted.

        ``corrupted`` is the return value of ``fabric.deliver`` for the
        response leg. One-sided responses carry raw snapshot bytes with
        no link-level integrity, so an in-flight corruption reaches the
        client and must be caught by CliqueMap's own checksum/validation
        path (§5.1). Request legs and RPC/message payloads are not
        corrupted: requests are tiny commands and the RPC transport has
        its own integrity layer.
        """
        if not corrupted or not data:
            return data
        self.counters.corrupted += 1
        return self.fabric.corrupt(data)
