"""Transport abstraction: one-sided reads over the simulated fabric.

Concrete transports (generic RDMA, Pony Express, 1RMA) share the endpoint
registry and the failure envelope: reads against a crashed host time out
with :class:`RemoteHostDownError`; reads against revoked/unknown regions
fail with :class:`RegionRevokedError` carried back to the client, which is
what triggers CliqueMap's RPC-based re-handshake retry path (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Sequence, Tuple, Union

from ..net import Fabric, Host
from ..sim import Simulator
from .memory import (RegionRevokedError, RemoteHostDownError, RmaEndpoint,
                     RmaError)

RMA_REQUEST_BYTES = 64          # a one-sided read command on the wire
RMA_RESPONSE_HEADER_BYTES = 32  # completion/validation header on responses
# A batched read carries one command header plus a compact descriptor
# (region, offset, size) per entry; the response carries a per-entry
# status word so partial failures can be reported without a round trip.
RMA_BATCH_ENTRY_BYTES = 16
RMA_BATCH_STATUS_BYTES = 8

#: One entry of a batched read: ``(region_id, offset, size)``.
ReadRequest = Tuple[int, int, int]
#: One result of a batched read: snapshot bytes, or the per-entry error.
ReadResult = Union[bytes, RmaError]


@dataclass
class TransportCounters:
    """Operation counters per transport."""

    reads: int = 0
    scars: int = 0
    messages: int = 0
    failures: int = 0
    corrupted: int = 0
    bytes_fetched: int = 0
    batched_reads: int = 0   # coalesced multi-entry ops on the wire
    batched_keys: int = 0    # entries carried inside those ops


class Transport:
    """Base transport: endpoint registry + failure handling."""

    name = "base"
    supports_scar = False

    def __init__(self, sim: Simulator, fabric: Fabric,
                 op_timeout: float = 200e-6):
        self.sim = sim
        self.fabric = fabric
        self.op_timeout = op_timeout
        self.endpoints: Dict[str, RmaEndpoint] = {}
        self.counters = TransportCounters()
        # Optional MetricsRegistry; the Cell wires this up so batched-op
        # amortization is observable per transport.
        self.registry = None
        self._batch_handles = None

    def attach(self, host: Host) -> RmaEndpoint:
        """Expose a host for RMA access; returns its endpoint."""
        endpoint = self.endpoints.get(host.name)
        if endpoint is None:
            endpoint = RmaEndpoint(host)
            self.endpoints[host.name] = endpoint
        return endpoint

    def detach(self, host: Host) -> None:
        self.endpoints.pop(host.name, None)

    def endpoint(self, host_name: str) -> RmaEndpoint:
        try:
            return self.endpoints[host_name]
        except KeyError:
            raise RemoteHostDownError(
                f"no RMA endpoint for host {host_name}") from None

    def _check_remote(self, server_name: str,
                      client_host: Host = None) -> RmaEndpoint:
        """Fail like a timed-out op when the remote is dead (a generator).

        RMA protocols are not applicable across the WAN (Table 1): a
        cross-zone op fails immediately, pushing clients to the RPC
        lookup fallback."""
        endpoint = self.endpoints.get(server_name)
        if endpoint is None or not endpoint.host.alive:
            self.counters.failures += 1
            yield self.sim.timeout(self.op_timeout)
            raise RemoteHostDownError(f"op to {server_name} timed out")
        if client_host is not None and \
                getattr(client_host, "zone", "local") != \
                getattr(endpoint.host, "zone", "local"):
            self.counters.failures += 1
            raise RemoteHostDownError(
                f"RMA to {server_name} crosses zones; use RPC for WAN")
        return endpoint

    def read(self, client_host: Host, server_name: str, region_id: int,
             offset: int, size: int, trace=None) -> Generator:
        """One-sided read; subclasses implement the timing.

        ``trace`` (an optional telemetry span) receives fabric/server
        child spans so an op can be decomposed layer by layer.
        """
        raise NotImplementedError

    def read_multi(self, client_host: Host, server_name: str,
                   requests: Sequence[ReadRequest],
                   trace=None) -> Generator:
        """Coalesced one-sided read of many regions on *one* server.

        Returns a list aligned with ``requests``; each element is either
        the snapshot bytes or the :class:`RmaError` that entry hit
        (exceptions-as-values, so one revoked region never discards its
        siblings' data). Whole-batch failures — dead host, partition —
        still raise, exactly like :meth:`read`.

        The base implementation issues the entries sequentially; wire-aware
        transports override it to put all descriptors in one fabric
        transfer and amortize the per-op costs (§7.1).
        """
        results: List[ReadResult] = []
        for region_id, offset, size in requests:
            try:
                data = yield from self.read(client_host, server_name,
                                            region_id, offset, size,
                                            trace=trace)
                results.append(data)
            except RegionRevokedError as exc:
                results.append(exc)
        return results

    def _read_entries(self, endpoint: RmaEndpoint,
                      requests: Sequence[ReadRequest]) -> List[ReadResult]:
        """Snapshot every entry of a batch, per-entry errors as values."""
        results: List[ReadResult] = []
        for region_id, offset, size in requests:
            try:
                window = endpoint.resolve(region_id)
                results.append(window.read(offset, size))
            except RmaError as exc:
                self.counters.failures += 1
                results.append(exc)
        return results

    def _observe_batch(self, n: int, engine_seconds: float) -> None:
        """Account one coalesced op covering ``n`` entries."""
        self.counters.batched_reads += 1
        self.counters.batched_keys += n
        registry = self.registry
        if registry is None or n <= 0:
            return
        handles = self._batch_handles
        if handles is None or handles[0] is not registry:
            # Cell assigns the registry after construction; bind the two
            # series once per registry instead of resolving per batch.
            handles = self._batch_handles = (
                registry,
                registry.counter(
                    "cliquemap_batched_keys_total",
                    "Keys carried inside coalesced multi-entry transport "
                    "ops").labels(transport=self.name),
                registry.histogram(
                    "cliquemap_batch_amortized_engine_cpu_seconds",
                    "Per-key engine/NIC CPU of a coalesced op "
                    "(total / keys)").labels(transport=self.name))
        handles[1].inc(n)
        handles[2].observe(engine_seconds / n)

    @staticmethod
    def _batch_request_bytes(n: int) -> int:
        return RMA_REQUEST_BYTES + RMA_BATCH_ENTRY_BYTES * n

    @staticmethod
    def _batch_response_bytes(results: Sequence[ReadResult]) -> int:
        payload = sum(len(r) for r in results if isinstance(r, bytes))
        return (payload + RMA_RESPONSE_HEADER_BYTES +
                RMA_BATCH_STATUS_BYTES * len(results))

    def _corrupt_largest(self, results: List[ReadResult],
                         corrupted) -> List[ReadResult]:
        """Apply a response-leg corruption to the batch's largest entry.

        A flipped byte lands somewhere in the coalesced payload; modeling
        it in the dominant entry keeps the per-batch corruption rate equal
        to the per-delivery rate without corrupting every sibling.
        """
        if not corrupted:
            return results
        victim = None
        for i, result in enumerate(results):
            if isinstance(result, bytes) and result and (
                    victim is None or
                    len(result) > len(results[victim])):
                victim = i
        if victim is not None:
            results[victim] = self._maybe_corrupt(results[victim], corrupted)
        return results

    def _resolve_or_fail(self, endpoint: RmaEndpoint, region_id: int):
        try:
            return endpoint.resolve(region_id)
        except RegionRevokedError:
            self.counters.failures += 1
            raise

    def _maybe_corrupt(self, data: bytes, corrupted) -> bytes:
        """Flip a payload byte when the response delivery was corrupted.

        ``corrupted`` is the return value of ``fabric.deliver`` for the
        response leg. One-sided responses carry raw snapshot bytes with
        no link-level integrity, so an in-flight corruption reaches the
        client and must be caught by CliqueMap's own checksum/validation
        path (§5.1). Request legs and RPC/message payloads are not
        corrupted: requests are tiny commands and the RPC transport has
        its own integrity layer.
        """
        if not corrupted or not data:
            return data
        self.counters.corrupted += 1
        return self.fabric.corrupt(data)
