"""Baseline systems the paper compares against (MemcacheG, §2.1)."""

from .memcacheg import (MemcacheGClient, MemcacheGCluster, MemcacheGConfig,
                        MemcacheGServer, MemcacheGStats)

__all__ = ["MemcacheGClient", "MemcacheGCluster", "MemcacheGConfig",
           "MemcacheGServer", "MemcacheGStats"]
