"""MemcacheG: the fully RPC-based KVCS baseline (§2.1).

Google's internal Memcached translation runs every operation — GETs
included — through the production RPC stack, inheriting its feature
wealth (auth, versioning, ACLs) and its >50 CPU-µs per-op cost. It is
the system CliqueMap's RMA read path is measured against: same sharded
cluster shape, same LRU caching behavior, no RMA anywhere.

Implemented here as an independent system (not a CliqueMap mode) so the
comparison benches exercise two genuinely different serving paths over
the same simulated substrate.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..net import Fabric, FabricConfig, Host, HostConfig
from ..rpc import (HandlerContext, Principal, RpcError, RpcServer,
                   connect as rpc_connect)
from ..sim import Simulator
from ..core.hashing import default_key_hash


@dataclass
class MemcacheGConfig:
    """Server tunables."""

    capacity_bytes: int = 64 << 20
    get_cpu: float = 1.2e-6          # application lookup code (dict + LRU)
    set_cpu: float = 1.8e-6
    per_kilobyte_cpu: float = 0.10e-6


@dataclass
class MemcacheGStats:
    gets: int = 0
    hits: int = 0
    sets: int = 0
    deletes: int = 0
    evictions: int = 0


class MemcacheGServer:
    """One cache shard: an LRU dict behind RPC handlers."""

    def __init__(self, sim: Simulator, host: Host, name: str,
                 config: Optional[MemcacheGConfig] = None):
        self.sim = sim
        self.host = host
        self.name = name
        self.config = config or MemcacheGConfig()
        self.stats = MemcacheGStats()
        self._store: "OrderedDict[bytes, bytes]" = OrderedDict()
        self._used_bytes = 0
        self.rpc_server = RpcServer(sim, host, f"memcacheg/{name}")
        self.rpc_server.register("Get", self._handle_get)
        self.rpc_server.register("Set", self._handle_set)
        self.rpc_server.register("Delete", self._handle_delete)

    @property
    def component(self) -> str:
        return f"memcacheg:{self.name}"

    def _charge(self, base: float, nbytes: int) -> Generator:
        yield from self.host.execute(
            base + nbytes / 1024.0 * self.config.per_kilobyte_cpu,
            self.component)

    def _handle_get(self, payload, context: HandlerContext) -> Generator:
        key: bytes = payload["key"]
        yield from self._charge(self.config.get_cpu, len(key))
        self.stats.gets += 1
        value = self._store.get(key)
        if value is None:
            return {"found": False}
        self._store.move_to_end(key)    # LRU touch: free on the RPC path
        self.stats.hits += 1
        context.response_size_override = len(value) + 32
        return {"found": True, "value": value}

    def _handle_set(self, payload, context: HandlerContext) -> Generator:
        key: bytes = payload["key"]
        value: bytes = payload["value"]
        yield from self._charge(self.config.set_cpu, len(key) + len(value))
        old = self._store.pop(key, None)
        if old is not None:
            self._used_bytes -= len(key) + len(old)
        self._store[key] = value
        self._used_bytes += len(key) + len(value)
        while self._used_bytes > self.config.capacity_bytes and self._store:
            evicted_key, evicted_value = self._store.popitem(last=False)
            self._used_bytes -= len(evicted_key) + len(evicted_value)
            self.stats.evictions += 1
        self.stats.sets += 1
        return {"stored": True}

    def _handle_delete(self, payload, context: HandlerContext) -> Generator:
        key: bytes = payload["key"]
        yield from self._charge(self.config.get_cpu, len(key))
        old = self._store.pop(key, None)
        if old is not None:
            self._used_bytes -= len(key) + len(old)
        self.stats.deletes += 1
        return {"deleted": old is not None}

    @property
    def resident_keys(self) -> int:
        return len(self._store)


class MemcacheGCluster:
    """A sharded MemcacheG deployment on the simulated fabric."""

    def __init__(self, sim: Optional[Simulator] = None,
                 fabric: Optional[Fabric] = None,
                 num_shards: int = 4,
                 config: Optional[MemcacheGConfig] = None,
                 host_config: Optional[HostConfig] = None):
        self.sim = sim or Simulator()
        self.fabric = fabric or Fabric(self.sim, FabricConfig())
        self.num_shards = num_shards
        self.servers: List[MemcacheGServer] = []
        for shard in range(num_shards):
            host = self.fabric.add_host(f"host/memcacheg-{shard}",
                                        host_config)
            self.servers.append(MemcacheGServer(
                self.sim, host, f"shard-{shard}", config))
        self._client_count = 0

    def shard_for(self, key: bytes) -> MemcacheGServer:
        key_hash = default_key_hash(key)
        shard = int.from_bytes(key_hash[8:], "little") % self.num_shards
        return self.servers[shard]

    def make_client(self, host: Optional[Host] = None
                    ) -> "MemcacheGClient":
        if host is None:
            self._client_count += 1
            host = self.fabric.add_host(
                f"host/memcacheg-client-{self._client_count}")
        return MemcacheGClient(self, host)


_client_ids = itertools.count(1)


class MemcacheGClient:
    """Key-sharded RPC client for the cluster."""

    def __init__(self, cluster: MemcacheGCluster, host: Host,
                 rpc_deadline: float = 50e-3):
        self.cluster = cluster
        self.sim = cluster.sim
        self.host = host
        self.rpc_deadline = rpc_deadline
        self.client_id = next(_client_ids)
        self.principal = Principal(f"memcacheg-client-{self.client_id}")
        self._channels: Dict[str, object] = {}

    def _channel(self, server: MemcacheGServer):
        channel = self._channels.get(server.name)
        if channel is None:
            channel = rpc_connect(self.sim, self.cluster.fabric, self.host,
                                  server.rpc_server, self.principal,
                                  client_component="memcacheg-client")
            self._channels[server.name] = channel
        return channel

    def get(self, key: bytes) -> Generator:
        """Returns ``(found, value)``; failures surface as not-found."""
        server = self.cluster.shard_for(key)
        try:
            reply = yield from self._channel(server).call(
                "Get", {"key": key}, deadline=self.rpc_deadline)
        except RpcError:
            return False, None
        return reply.get("found", False), reply.get("value")

    def set(self, key: bytes, value: bytes) -> Generator:
        server = self.cluster.shard_for(key)
        try:
            reply = yield from self._channel(server).call(
                "Set", {"key": key, "value": value},
                deadline=self.rpc_deadline,
                request_size=len(key) + len(value) + 32)
        except RpcError:
            return False
        return reply.get("stored", False)

    def delete(self, key: bytes) -> Generator:
        server = self.cluster.shard_for(key)
        try:
            reply = yield from self._channel(server).call(
                "Delete", {"key": key}, deadline=self.rpc_deadline)
        except RpcError:
            return False
        return reply.get("deleted", False)
