"""repro: a full reproduction of CliqueMap (SIGCOMM 2021).

CliqueMap is Google's hybrid RMA/RPC in-memory key-value caching system.
This package reimplements the system — and every substrate it depends on
(discrete-event simulation, hosts/NICs/fabric, RMA transports including a
Pony-Express-like software NIC with SCAR, a Stubby-like RPC framework) —
in pure Python, at laptop scale, preserving the paper's comparative
behaviors.

Quickstart::

    from repro import Cell, CellSpec, ReplicationMode

    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=6))
    client = cell.connect_client()
    sim = cell.sim

    def app():
        yield from client.set(b"k", b"v")
        result = yield from client.get(b"k")
        assert result.hit and result.value == b"v"

    sim.run(until=sim.process(app()))
"""

from .core import (Backend, BackendConfig, Cell, CellSpec, ClientConfig,
                   CliqueMapClient, Federation, FederationSpec, GetResult,
                   GetStatus, GetStrategy, LookupStrategy, MutationResult,
                   OpResult, ReplicationMode, SetStatus, VersionNumber)
from .telemetry import MetricsRegistry, Span, TraceContext, Tracer

__version__ = "1.0.0"

__all__ = [
    "Backend", "BackendConfig", "Cell", "CellSpec", "ClientConfig",
    "CliqueMapClient", "Federation", "FederationSpec", "GetResult",
    "GetStatus", "GetStrategy", "LookupStrategy", "MutationResult",
    "OpResult", "ReplicationMode", "SetStatus", "VersionNumber",
    "MetricsRegistry", "Span", "TraceContext", "Tracer",
    "__version__",
]
