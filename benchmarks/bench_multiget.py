"""Batched multi-key GETs vs singleton loops: the first perf datapoint.

Measures the wire-level batched ``get_multi`` path (§7.1) against 32
singleton GETs on the pony transport: per-key engine CPU (the Pony
engine service time on both sides) and per-key latency. Writes the
result to ``BENCH_multiget.json`` at the repo root so the perf
trajectory records the optimization.

Shapes to hold: batching one coalesced index fetch per (backend, batch)
amortizes the per-op engine dispatch — at least 2x lower per-key engine
CPU — and resolving all keys in one parallel wave instead of a sequential
loop gives at least 1.5x lower per-key latency. (Measured speedups are
around 3x CPU and 15x latency; the asserted floors leave headroom for
cost-model tuning.)
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import (render_multiget_table, run_multiget_benchmark,
                            write_bench_json)

NUM_KEYS = 32
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_multiget.json"


def bench_multiget_batching(benchmark):
    result = run_once(benchmark,
                      lambda: run_multiget_benchmark(num_keys=NUM_KEYS,
                                                     transport="pony"))
    print()
    print(render_multiget_table(result))

    # Acceptance floors for the batched path (ISSUE 3).
    assert result["engine_cpu_speedup"] >= 2.0, result
    assert result["latency_speedup"] >= 1.5, result
    # The whole batch resolved on the fast path: one coalesced read per
    # (backend, batch), no singleton fallbacks.
    assert result["batched"]["fallback_keys"] == 0, result
    assert result["batched"]["batched_keys"] == NUM_KEYS * 3, result

    write_bench_json(result, str(OUTPUT))
    print(f"  wrote {OUTPUT.name}")
