"""Figure 14: unplanned maintenance via repairs (§5.4, §7.2.3).

A backend is forcibly crashed under steady GET load; it restarts later
"on another host" and a burst of repair RPC traffic repopulates it from
the healthy cohort. Takeaways: repairs have little client-visible
impact, and while degraded the clients do *less* total work (they only
send two of three index fetches while awaiting reconnect).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import (CounterSeries, TimeSeries,
                            render_percentile_lines, render_table)
from repro.core import (Cell, CellSpec, ClientConfig, GetStatus,
                        LookupStrategy, MaintenanceConfig, RepairConfig,
                        ReplicationMode)

KEYS = 120
DURATION = 3.0
CRASH_AT = 0.5
RESTART_DELAY = 1.0
BIN = 0.25


def rpc_bytes_total(cell):
    return sum(b.rpc_server.metrics.total_bytes
               for b in cell.backends.values())


def run_experiment():
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, transport="pony",
        repair_config=RepairConfig(enabled=True, scan_interval=60.0),
        maintenance_config=MaintenanceConfig()))
    clients = [cell.connect_client(
        strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(touch_enabled=False))
        for _ in range(4)]
    sim = cell.sim

    def setup():
        for i in range(KEYS):
            yield from clients[0].set(b"key-%d" % i, bytes(512))

    sim.run(until=sim.process(setup()))
    latency = TimeSeries(bin_width=BIN)
    rpc_rate = CounterSeries(bin_width=BIN)
    reads_per_bin = CounterSeries(bin_width=BIN)
    bad = [0]
    total = [0]
    start = sim.now

    def load(client, stride):
        i = stride
        while sim.now - start < DURATION:
            before = cell.transport.counters.reads
            result = yield from client.get(b"key-%d" % (i % KEYS))
            reads_per_bin.add(sim.now - start,
                              cell.transport.counters.reads - before)
            total[0] += 1
            latency.record(sim.now - start, result.latency)
            if result.status is not GetStatus.HIT:
                bad[0] += 1
            i += stride
            yield sim.timeout(1e-4)

    def sampler():
        last = rpc_bytes_total(cell)
        while sim.now - start < DURATION:
            yield sim.timeout(BIN)
            now_bytes = rpc_bytes_total(cell)
            rpc_rate.add(sim.now - start - 1e-3, now_bytes - last)
            last = now_bytes

    def event():
        yield sim.timeout(CRASH_AT)
        yield from cell.maintenance.unplanned_crash(
            0, restart_delay=RESTART_DELAY)

    procs = [sim.process(load(c, 7 + i)) for i, c in enumerate(clients)]
    procs.append(sim.process(sampler()))
    event_proc = sim.process(event())
    sim.run(until=sim.all_of(procs))
    sim.run(until=event_proc)
    restored = cell.backend_by_task(cell.task_for_shard(0))
    return (cell, latency, rpc_rate, reads_per_bin, bad[0], total[0],
            restored.resident_keys)


def bench_fig14_unplanned_maintenance(benchmark):
    (cell, latency, rpc_rate, reads_per_bin, bad, total,
     restored_keys) = run_once(benchmark, run_experiment)
    print()
    print(render_percentile_lines(
        "Fig 14: unplanned crash — latency (us) & RPC bytes/s",
        [("50p", [(t, v * 1e6) for t, v in latency.series(50)]),
         ("99.9p", [(t, v * 1e6) for t, v in latency.series(99.9)]),
         ("RPC B/s", rpc_rate.per_second()),
         ("RMA reads/s", reads_per_bin.per_second())],
        x_label="t (s)"))
    print()
    print(render_table(
        "Fig 14 summary", ["metric", "value"],
        [["GETs", total], ["failed GETs", bad],
         ["restored resident keys", restored_keys],
         ["keys recovered by repair",
          sum(s.stats.keys_recovered for s in cell.scanners.values())]]))

    # No client-visible misses: quorum masks the failure, repairs restore.
    assert bad == 0
    # The restarted backend was repopulated by repairs.
    assert restored_keys == KEYS
    # A repair RPC burst is visible after the restart.
    series = dict(rpc_rate.per_second())
    burst_bins = [v for t, v in series.items()
                  if t > CRASH_AT + RESTART_DELAY - BIN]
    quiet_bins = [v for t, v in series.items() if t < CRASH_AT]
    assert max(burst_bins) > 3 * max(max(quiet_bins), 1.0)
    # While degraded, clients send fewer RMA reads per op (2-of-3).
    reads = dict(reads_per_bin.per_second())
    degraded_rate = min(v for t, v in reads.items()
                        if CRASH_AT < t < CRASH_AT + RESTART_DELAY)
    healthy_rate = max(v for t, v in reads.items() if t < CRASH_AT)
    assert degraded_rate < healthy_rate
