"""Figure 7: client & Pony Express CPU per op by lookup strategy (§6.3).

Measures CPU-ns/op attributed to the CliqueMap client code and to Pony
Express (engines on both sides), for the three lookup strategies: 2xR
(two one-sided reads), SCAR (one NIC-side scan-and-read), and MSG
(two-sided messaging that wakes a server application thread).

Shapes to hold (paper Fig 7): SCAR costs about as much as a single Pony
read, i.e. roughly half of 2xR's total; MSG is the most expensive by a
clear margin because of server thread wake-ups.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import drive, run_once

from repro.analysis import render_table
from repro.core import Cell, CellSpec, LookupStrategy, ReplicationMode

OPS = 400
VALUE_BYTES = 64

STRATEGIES = [("2xR", LookupStrategy.TWO_R),
              ("SCAR", LookupStrategy.SCAR),
              ("MSG", LookupStrategy.MSG)]


def measure(strategy: LookupStrategy):
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2,
                         transport="pony"))
    client = cell.connect_client(strategy=strategy)
    backend_hosts = [b.host for b in cell.serving_backends()]

    def setup():
        yield from client.set(b"k", b"v" * VALUE_BYTES)

    drive(cell, setup())

    def snapshot():
        pony = client.host.ledger.seconds("pony") + \
            sum(h.ledger.seconds("pony") for h in backend_hosts)
        cl = client.host.ledger.seconds("cliquemap-client")
        msg_app = sum(h.ledger.seconds("msg-app") for h in backend_hosts)
        return pony, cl, msg_app

    before = snapshot()

    def loop():
        for _ in range(OPS):
            yield from client.get(b"k")

    drive(cell, loop())
    after = snapshot()
    # The telemetry registry is the system of record for op counts: it
    # both checks that every GET hit and provides the CPU-per-op
    # denominator, exactly as the paper's figures divide monitored CPU
    # by monitored op rates.
    ops = cell.metrics.total("cliquemap_ops_total", op="get")
    hits = cell.metrics.total("cliquemap_ops_total", op="get", status="hit")
    assert ops == hits == OPS, (ops, hits)
    pony_ns = (after[0] - before[0]) / ops * 1e9
    client_ns = (after[1] - before[1]) / ops * 1e9
    msg_app_ns = (after[2] - before[2]) / ops * 1e9
    return client_ns, pony_ns, msg_app_ns


def run_experiment():
    return {name: measure(strategy) for name, strategy in STRATEGIES}


def bench_fig07_lookup_strategy_cpu(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [[name, f"{c:.0f}", f"{p:.0f}", f"{a:.0f}",
             f"{c + p + a:.0f}"]
            for name, (c, p, a) in results.items()]
    print()
    print(render_table(
        "Fig 7: CPU-ns/op by lookup strategy",
        ["strategy", "CliqueMap client", "Pony Express",
         "server app thread", "total"], rows))

    total = {name: sum(v) for name, v in results.items()}
    pony = {name: v[1] for name, v in results.items()}
    client = {name: v[0] for name, v in results.items()}
    # SCAR's Pony cost ~ one read ~ half of 2xR's two reads.
    assert 0.35 * pony["2xR"] < pony["SCAR"] < 0.75 * pony["2xR"]
    # SCAR also halves CliqueMap-client completions.
    assert client["SCAR"] < client["2xR"]
    # MSG costs the most overall: thread wake-ups dominate (§6.3).
    assert total["MSG"] > total["2xR"] > total["SCAR"]
    # MSG's extra cost exceeds the whole SCAR scan cost.
    assert results["MSG"][2] > 0  # app thread CPU present only for MSG
    assert results["SCAR"][2] == 0
