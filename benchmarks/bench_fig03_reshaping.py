"""Figure 3: memory reshaping and subsequent DRAM savings (§4.1).

The paper's chart: before reshaping launched, deployments provisioned
DRAM for peak; at launch the footprint dropped ~10%, and when the corpus
later shrank ~50% the footprint followed automatically with no human
intervention (each backend scaling independently).

This bench replays that timeline on a small cell: weeks 1-3 report the
provision-for-peak footprint, reshaping "launches" in week 4, the corpus
shrinks in week 8, and non-disruptive restarts downsize backends in week
10. Rows printed: week, corpus keys, DRAM used (reshaping), DRAM used
(provision-for-peak baseline).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import drive, run_once

from repro.analysis import render_table
from repro.core import (BackendConfig, Cell, CellSpec, ReplicationMode,
                        SetStatus, VersionNumber)

VALUE_BYTES = 3000
WEEKS = 13
LAUNCH_WEEK = 4      # reshaping feature rollout
SHRINK_WEEK = 8      # the corpus itself shrinks
RESTART_WEEK = 10    # non-disruptive restarts downsize populated DRAM


def corpus_keys_for_week(week: int) -> int:
    if week < SHRINK_WEEK:
        return 240 + 40 * min(week, 6)   # organic growth
    return 200                            # corpus shrank ~50% from peak


def run_experiment():
    spec = CellSpec(
        name="fig3", mode=ReplicationMode.R1, num_shards=4,
        transport="pony",
        backend_config=BackendConfig(
            data_initial_bytes=256 * 1024, data_virtual_limit=8 << 20,
            slab_bytes=64 * 1024, grow_watermark=0.75))
    cell = Cell(spec)
    client = cell.connect_client()
    provisioned_peak = sum(
        b.index.total_bytes + b.data.arena.virtual_limit
        for b in cell.serving_backends())

    rows = []
    current_keys = 0

    def set_corpus(target):
        nonlocal current_keys
        if target > current_keys:
            for i in range(current_keys, target):
                result = yield from client.set(b"doc-%d" % i,
                                               bytes(VALUE_BYTES))
                assert result.status is SetStatus.APPLIED
        else:
            for i in range(target, current_keys):
                yield from client.erase(b"doc-%d" % i)
        current_keys = target

    def week_tick(week):
        yield from set_corpus(corpus_keys_for_week(week))
        yield cell.sim.timeout(1.0)  # settle async grows
        if week == RESTART_WEEK:
            # Non-disruptive restart per backend: snapshot, restart with a
            # small region, reinstall — the §4.1 downsizing path.
            for shard in range(spec.num_shards):
                task = cell.task_for_shard(shard)
                backend = cell.backend_by_task(task)
                entries = backend.snapshot_entries()
                backend.stop()
                restarted = cell.restart_backend_task(task, shard)
                for key, value, version in entries:
                    yield from restarted._apply_set(
                        key, value, VersionNumber.unpack(version))
            yield from client._refresh_config()

    for week in range(1, WEEKS + 1):
        drive(cell, week_tick(week))
        actual = cell.total_dram_bytes()
        reported = provisioned_peak if week < LAUNCH_WEEK else actual
        rows.append([week, current_keys,
                     reported / 1e6, provisioned_peak / 1e6])
    return rows, provisioned_peak


def bench_fig03_memory_reshaping(benchmark):
    rows, provisioned_peak = run_once(benchmark, run_experiment)
    print()
    print(render_table(
        "Fig 3: DRAM footprint over 13 weeks (MB)",
        ["week", "corpus keys", "DRAM used (MB)",
         "provision-for-peak (MB)"], rows))

    footprint = {week: used for week, _k, used, _peak in rows}
    # Reshaping launch drops the footprint well below provision-for-peak.
    assert footprint[LAUNCH_WEEK] < 0.5 * footprint[LAUNCH_WEEK - 1]
    # The corpus shrink + restarts drop DRAM again, with no intervention
    # beyond restarts (paper saw ~50%).
    assert footprint[WEEKS] < 0.7 * footprint[SHRINK_WEEK - 1]
    # Footprint tracks the corpus: still far below peak at the end.
    assert footprint[WEEKS] < 0.3 * (provisioned_peak / 1e6)
