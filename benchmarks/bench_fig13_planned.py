"""Figure 13: planned maintenance via warm spares (§6.1, §7.2.3).

An R=3.2 cell under a steady GET load is notified of a planned primary
restart: the primary migrates its shard to a warm spare (RPC byte
burst), exits, restarts, and the spare hands the data back (second RPC
burst). Takeaway: warm sparing hides the whole event — fewer than 1 op
in 1000 sees degraded performance.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import (CounterSeries, TimeSeries,
                            render_percentile_lines, render_table)
from repro.core import (Cell, CellSpec, ClientConfig, GetStatus,
                        LookupStrategy, MaintenanceConfig, ReplicationMode)

KEYS = 120
VALUE_BYTES = 512
DURATION = 3.0
EVENT_AT = 0.5
BIN = 0.25


def rpc_bytes_total(cell):
    return sum(b.rpc_server.metrics.total_bytes
               for b in cell.backends.values())


def run_experiment():
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, num_spares=1,
        transport="pony",
        maintenance_config=MaintenanceConfig(restart_delay=0.8)))
    # Touch reporting off so the RPC byte series isolates migration
    # traffic, as in the paper's chart.
    clients = [cell.connect_client(
        strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(touch_enabled=False))
        for _ in range(4)]
    sim = cell.sim

    def setup():
        for i in range(KEYS):
            yield from clients[0].set(b"key-%d" % i, bytes(VALUE_BYTES))

    sim.run(until=sim.process(setup()))
    latency = TimeSeries(bin_width=BIN)
    rpc_rate = CounterSeries(bin_width=BIN)
    degraded = [0]
    total = [0]
    start = sim.now

    def load(client, stride):
        i = stride
        while sim.now - start < DURATION:
            result = yield from client.get(b"key-%d" % (i % KEYS))
            total[0] += 1
            latency.record(sim.now - start, result.latency)
            if result.status is not GetStatus.HIT or result.attempts > 1:
                degraded[0] += 1
            i += stride
            yield sim.timeout(1e-4)  # ~40K GET/s aggregate

    def sampler():
        last = rpc_bytes_total(cell)
        while sim.now - start < DURATION:
            yield sim.timeout(BIN)
            now_bytes = rpc_bytes_total(cell)
            rpc_rate.add(sim.now - start - 1e-3, now_bytes - last)
            last = now_bytes

    def event():
        yield sim.timeout(EVENT_AT)
        yield from cell.maintenance.planned_restart(0)

    procs = [sim.process(load(c, 7 + i)) for i, c in enumerate(clients)]
    procs.append(sim.process(sampler()))
    event_proc = sim.process(event())
    sim.run(until=sim.all_of(procs))
    sim.run(until=event_proc)
    return cell, latency, rpc_rate, degraded[0], total[0]


def bench_fig13_planned_maintenance(benchmark):
    cell, latency, rpc_rate, degraded, total = run_once(benchmark,
                                                        run_experiment)
    print()
    print(render_percentile_lines(
        "Fig 13: planned maintenance — latency (us) & RPC bytes/s",
        [("50p", [(t, v * 1e6) for t, v in latency.series(50)]),
         ("99.9p", [(t, v * 1e6) for t, v in latency.series(99.9)]),
         ("RPC B/s", rpc_rate.per_second())],
        x_label="t (s)"))
    print()
    print(render_table(
        "Fig 13 summary", ["metric", "value"],
        [["GETs", total],
         ["degraded ops", degraded],
         ["degraded fraction", f"{degraded / max(1, total):.5f}"],
         ["entries migrated",
          cell.maintenance.stats.entries_migrated]]))

    # Fewer than 1 op in 1000 sees degraded performance.
    assert degraded / max(1, total) < 1e-3
    # Data made two hops: out to the spare and back.
    assert cell.maintenance.stats.entries_migrated >= 2 * KEYS
    # RPC bytes show distinct bursts (migration out, migration back),
    # well above the steady-state background.
    series = rpc_rate.per_second()
    peak = max(v for _t, v in series)
    background = sorted(v for _t, v in series)[len(series) // 2]
    assert peak > 3 * max(background, 1.0)
    # Median latency stays flat through the event.
    medians = [v for _t, v in latency.series(50)]
    assert max(medians) < 3 * min(medians)
