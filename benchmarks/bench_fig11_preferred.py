"""Figure 11: preferred-backend selection under server load (§7.2.1).

A 3-backend R=3.2 cell using 2xR; clients repeatedly GET one 4KB KV
pair; an antagonist drives ~95% of one backend's NIC. Quoruming lets the
client take data from the first responder and ignore the slow replica,
so R=3.2 shows almost no latency elevation — while R=1, pinned to the
loaded server, suffers at both median and tail.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import (key_with_primary_shard, measure_gets, preload_keys,
                     run_once)

from repro.analysis import render_table
from repro.core import Cell, CellSpec, LookupStrategy, ReplicationMode

VALUE_BYTES = 4096
OPS = 300
ANTAGONIST_FRACTION = 0.95


def run_case(mode: ReplicationMode, loaded: bool):
    cell = Cell(CellSpec(mode=mode, num_shards=3, transport="pony"))
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)
    # Pin the key to shard 0 so R=1 depends on the loaded backend.
    key = key_with_primary_shard(cell, 0)
    preload_keys(cell, client, [key], VALUE_BYTES)
    if loaded:
        victim = cell.backend_by_task(cell.task_for_shard(0))
        cell.fabric.start_antagonist(
            victim.host,
            ANTAGONIST_FRACTION * cell.fabric.config.host_rate_bytes_per_sec,
            direction="both")
        # Let antagonist queues build.
        cell.sim.run(until=cell.sim.now + 2e-3)
    recorder = measure_gets(cell, client, [key], OPS, interval=20e-6)
    return recorder.percentile(50), recorder.percentile(99)


def run_experiment():
    results = {}
    for mode, label in [(ReplicationMode.R3_2, "R=3.2"),
                        (ReplicationMode.R1, "R=1")]:
        base50, base99 = run_case(mode, loaded=False)
        load50, load99 = run_case(mode, loaded=True)
        results[label] = {
            "base": (base50, base99),
            "load": (load50, load99),
            "norm50": load50 / base50,
            "norm99": load99 / base99,
        }
    return results


def bench_fig11_preferred_backend(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = []
    for label, r in results.items():
        rows.append([f"{label} no load", "1.00", "1.00",
                     f"{r['base'][0] * 1e6:.1f}", f"{r['base'][1] * 1e6:.1f}"])
        rows.append([f"{label} with load", f"{r['norm50']:.2f}",
                     f"{r['norm99']:.2f}",
                     f"{r['load'][0] * 1e6:.1f}", f"{r['load'][1] * 1e6:.1f}"])
    print()
    print(render_table(
        "Fig 11: preferred-backend benefit (latency normalized to no-load)",
        ["configuration", "norm 50p", "norm 99p", "50p (us)", "99p (us)"],
        rows))

    # R=3.2 tolerates the slow server: median within noise of unloaded.
    assert results["R=3.2"]["norm50"] < 1.3
    # R=1 is obliged to use the loaded backend: both median and tail
    # inflate substantially.
    assert results["R=1"]["norm50"] > 1.5
    assert results["R=1"]["norm99"] > 1.5
    # And R=1's degradation far exceeds R=3.2's.
    assert results["R=1"]["norm50"] > 1.5 * results["R=3.2"]["norm50"]
