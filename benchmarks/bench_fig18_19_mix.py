"""Figures 18 & 19: latency and CPU under varying GET/SET mixes (§7.2.5).

Fixed 4KB values, fixed total op rate, GET fraction swept over 5%, 50%,
95%. More RPC-based SETs mean more framework CPU and worse typical
latency, because progressively more of the workload cannot use RMA.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import LatencyRecorder, render_table
from repro.core import (BackendConfig, Cell, CellSpec, LookupStrategy,
                        ReplicationMode, SetStatus)
from repro.sim import RandomStream

VALUE_BYTES = 4096
TOTAL_OPS = 3000
MIXES = [0.05, 0.50, 0.95]  # fraction of ops that are GETs
KEYS = 64


def run_mix(get_fraction: float):
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, transport="pony",
        backend_config=BackendConfig(data_initial_bytes=4 << 20,
                                     data_virtual_limit=64 << 20)))
    clients = [cell.connect_client(strategy=LookupStrategy.TWO_R)
               for _ in range(4)]
    sim = cell.sim
    keys = [b"obj-%d" % i for i in range(KEYS)]

    def setup():
        for key in keys:
            result = yield from clients[0].set(key, bytes(VALUE_BYTES))
            assert result.status is SetStatus.APPLIED

    sim.run(until=sim.process(setup()))

    get_latency = LatencyRecorder()
    set_latency = LatencyRecorder()
    stream = RandomStream(21, f"mix-{get_fraction}")
    backend_cpu_before = cell.total_backend_cpu_seconds()
    pony_before = sum(
        b.host.ledger.seconds("pony") for b in cell.serving_backends())
    start = sim.now
    per_client = TOTAL_OPS // len(clients)

    def worker(client, worker_stream):
        for i in range(per_client):
            key = keys[worker_stream.randint(0, KEYS - 1)]
            if worker_stream.bernoulli(get_fraction):
                result = yield from client.get(key)
                get_latency.record(result.latency)
            else:
                result = yield from client.set(key, bytes(VALUE_BYTES))
                set_latency.record(result.latency)
            yield sim.timeout(20e-6)

    procs = [sim.process(worker(c, stream.child(str(i))))
             for i, c in enumerate(clients)]
    sim.run(until=sim.all_of(procs))
    elapsed = sim.now - start
    backend_cpu = (cell.total_backend_cpu_seconds() - backend_cpu_before +
                   sum(b.host.ledger.seconds("pony")
                       for b in cell.serving_backends()) - pony_before)
    # CPU*s per second of wall time (Fig 19's y axis).
    cpu_rate = backend_cpu / elapsed
    return get_latency, set_latency, cpu_rate


def run_experiment():
    return {mix: run_mix(mix) for mix in MIXES}


def bench_fig18_19_get_set_mix(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = []
    for mix, (get_lat, set_lat, cpu_rate) in results.items():
        rows.append([
            f"{mix * 100:.0f}% GETs",
            get_lat.percentile(50) * 1e6 if get_lat.count else float("nan"),
            get_lat.percentile(99) * 1e6 if get_lat.count else float("nan"),
            set_lat.percentile(50) * 1e6 if set_lat.count else float("nan"),
            set_lat.percentile(99) * 1e6 if set_lat.count else float("nan"),
            f"{cpu_rate * 1e3:.2f}",
        ])
    print()
    print(render_table(
        "Fig 18/19: latency (us) and backend CPU under GET/SET mixes",
        ["mix", "GET 50p", "GET 99p", "SET 50p", "SET 99p",
         "backend CPU-ms/s"], rows))

    cpu = {mix: r[2] for mix, r in results.items()}
    get50 = {mix: r[0].percentile(50) for mix, r in results.items()}
    set50 = {mix: r[1].percentile(50) for mix, r in results.items()}
    # Fig 19: more SETs -> more backend CPU (RPC framework + mutation).
    assert cpu[0.05] > cpu[0.50] > cpu[0.95]
    assert cpu[0.05] > 2 * cpu[0.95]
    # Fig 18: SETs are far slower than GETs at every mix.
    for mix in MIXES:
        assert set50[mix] > 1.5 * get50[mix]
