"""Thundering herd on the miss path: coalesced vs naive SoR fetches.

A viral cold key arrives: many clients GET it in the same instant, all
MISS the cache, and all fall through to the read-through coordinator
(§PR 6). With single-flight coalescing one leader fetches from the
system of record and every concurrent waiter shares the reply; with
coalescing disabled each client issues its own SoR read — the classic
herd that melts a provisioned-throughput backing store.

Shape to hold: for ``WAITERS`` concurrent clients per viral key, the
coalesced pipeline performs at most ``WAITERS / 10`` SoR reads per key
(it should be exactly 1) — at least a 10x fetch reduction over the
naive path. Writes ``BENCH_readthrough.json`` at the repo root so the
perf trajectory records the floor.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import write_bench_json
from repro.core import Cell, CellSpec, GetStatus, ReplicationMode
from repro.storage import MissPolicy, ProvisionedThroughput, SystemOfRecord

WAITERS = 40
VIRAL_KEYS = 3
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_readthrough.json"


def run_herd(coalesce: bool, waiters: int = WAITERS,
             viral_keys: int = VIRAL_KEYS) -> dict:
    """One herd: ``waiters`` clients GET each viral key simultaneously."""
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=4,
                         transport="pony", seed=1009))
    sim = cell.sim
    sor_host = cell.fabric.add_host("host/sor")
    keys = [b"viral-%02d" % i for i in range(viral_keys)]
    sor = SystemOfRecord(sim, sor_host,
                         throughput=ProvisionedThroughput(
                             read_units=100000.0, write_units=100000.0))
    sor.load({key: b"payload-for-" + key for key in keys})
    coordinator = cell.attach_sor(sor, MissPolicy(coalesce=coalesce))
    clients = [cell.connect_client() for _ in range(waiters)]

    outcomes = {"hits": 0, "other": 0}
    latencies = []

    def herd_get(client, key):
        t0 = sim.now
        result = yield from client.get(key)
        latencies.append(sim.now - t0)
        if result.status is GetStatus.HIT:
            outcomes["hits"] += 1
        else:
            outcomes["other"] += 1

    procs = [sim.process(herd_get(client, key))
             for key in keys for client in clients]
    sim.run(until=sim.all_of(procs))
    for client in clients:
        client.close()
    cell.close()

    total_gets = waiters * viral_keys
    return {
        "coalesce": coalesce,
        "waiters": waiters,
        "viral_keys": viral_keys,
        "total_gets": total_gets,
        "hits": outcomes["hits"],
        "non_hits": outcomes["other"],
        "sor_reads": sor.reads,
        "sor_reads_per_key": sor.reads / viral_keys,
        "coalesced_waiters": coordinator.stats["coalesced"],
        "coalescing_ratio": coordinator.coalescing_ratio(),
        "mean_latency_us": 1e6 * sum(latencies) / len(latencies),
    }


def run_datapoint() -> dict:
    coalesced = run_herd(coalesce=True)
    naive = run_herd(coalesce=False)
    reduction = naive["sor_reads"] / max(1, coalesced["sor_reads"])
    return {
        "benchmark": "readthrough_herd",
        "transport": "pony",
        "waiters": WAITERS,
        "viral_keys": VIRAL_KEYS,
        "coalesced": coalesced,
        "naive": naive,
        "fetch_reduction": reduction,
        # Regression floor: coalescing must keep at least a 10x fetch
        # reduction over the naive path on this herd shape.
        "fetch_reduction_floor": 10.0,
    }


def render(result: dict) -> str:
    c, n = result["coalesced"], result["naive"]
    return "\n".join([
        f"readthrough herd — {result['waiters']} waiters x "
        f"{result['viral_keys']} viral keys",
        f"  naive:     {n['sor_reads']} SoR reads "
        f"({n['sor_reads_per_key']:.1f}/key), "
        f"{n['mean_latency_us']:.1f} us mean GET",
        f"  coalesced: {c['sor_reads']} SoR reads "
        f"({c['sor_reads_per_key']:.1f}/key), "
        f"{c['mean_latency_us']:.1f} us mean GET, "
        f"ratio={c['coalescing_ratio']:.3f}",
        f"  reduction: {result['fetch_reduction']:.1f}x "
        f"(floor {result['fetch_reduction_floor']:.0f}x)",
    ])


def bench_readthrough_herd(benchmark):
    result = run_once(benchmark, run_datapoint)
    print()
    print(render(result))

    coalesced, naive = result["coalesced"], result["naive"]
    # Every GET in the herd resolves to the SoR value.
    assert coalesced["hits"] == coalesced["total_gets"], result
    assert naive["hits"] == naive["total_gets"], result
    # Acceptance: the coalesced herd collapses to (about) one fetch per
    # key — at most waiters/10 — and at least 10x fewer than naive.
    assert coalesced["sor_reads_per_key"] <= WAITERS / 10, result
    assert result["fetch_reduction"] >= result["fetch_reduction_floor"], \
        result
    # The naive path really did stampede (otherwise the comparison is
    # vacuous).
    assert naive["sor_reads"] >= 0.5 * naive["total_gets"], result

    write_bench_json(result, str(OUTPUT))
    print(f"  wrote {OUTPUT.name}")
