"""The pre-optimization simulation kernel, kept verbatim as a baseline.

This is the `repro.sim.core` scheduler as it stood before the fast-path
rewrite: one closure allocated per scheduled action, every zero-delay
action pays a heap push/pop, and no timeout pooling. ``bench_kernel.py``
measures the live kernel against it, and ``bench_scale.py`` replays the
same seeded cell workload on both to prove the ready-queue preserves
event order exactly (same seed, same op outcomes).

Exception types and the event-base check are shared with the live kernel
so real cell code (resources, RPC, clients) runs unmodified on either
simulator. Do not "improve" this module — its slowness is the datapoint.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.core import Event as _CoreEvent
from repro.sim.core import Interrupt, SimulationError, StopSimulation


class LegacyEvent:
    """Pre-change event: callbacks are bare ``fn(event)`` callables."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "defused")

    def __init__(self, sim: "LegacySimulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self.defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None) -> "LegacyEvent":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "LegacyEvent":
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._schedule_event(self)
        return self

    def add_callback(self, fn: Callable, *args: Any) -> None:
        if args:  # new-core call sites pass bound args
            bound, bound_args = fn, args
            fn = lambda ev: bound(ev, *bound_args)  # noqa: E731
        if self.callbacks is None:
            self.sim.call_soon(fn, self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if not self._ok and not callbacks and not self.defused:
            raise self._value
        for fn in callbacks or ():
            fn(self)


class LegacyTimeout(LegacyEvent):
    __slots__ = ()

    def __init__(self, sim: "LegacySimulator", delay: float,
                 value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule_event(self, delay)


class LegacyProcess(LegacyEvent):
    __slots__ = ("_gen", "_wait_serial", "name")

    def __init__(self, sim: "LegacySimulator", gen: Generator,
                 name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError("process() requires a generator")
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._wait_serial = 0
        sim.call_soon(self._resume_with, None, self._wait_serial)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        if self._triggered:
            return
        self._wait_serial += 1
        self.sim.call_soon(self._throw_with, Interrupt(cause),
                           self._wait_serial)

    def _on_wait_done(self, serial: int, event) -> None:
        if serial != self._wait_serial or self._triggered:
            return
        if event.ok:
            self._resume_with(event.value, serial)
        else:
            event.defused = True
            self._throw_with(event.value, serial)

    def _resume_with(self, value: Any, serial: int) -> None:
        if serial != self._wait_serial or self._triggered:
            return
        self._step(lambda: self._gen.send(value))

    def _throw_with(self, exc: BaseException, serial: int) -> None:
        if self._triggered:
            return
        self._step(lambda: self._gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process died
            self.fail(exc)
            return
        if not isinstance(target, (LegacyEvent, _CoreEvent)):
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        if target is self:
            self.fail(SimulationError("process cannot wait on itself"))
            return
        self._wait_serial += 1
        serial = self._wait_serial
        target.add_callback(lambda ev: self._on_wait_done(serial, ev))


class LegacyCondition(LegacyEvent):
    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "LegacySimulator", events: Iterable):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._child_done)

    def _child_done(self, event) -> None:
        raise NotImplementedError


class LegacyAllOf(LegacyCondition):
    __slots__ = ()

    def _child_done(self, event) -> None:
        if self._triggered:
            if not event.ok:
                event.defused = True
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev.value for ev in self._events])


class LegacyAnyOf(LegacyCondition):
    __slots__ = ()

    def _child_done(self, event) -> None:
        if self._triggered:
            if not event.ok:
                event.defused = True
            return
        if event.ok:
            self.succeed((event, event.value))
        else:
            event.defused = True
            self.fail(event.value)


class LegacySimulator:
    """The event loop as a pure (time, seq, closure) priority queue."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self._running = False
        # Compat shim, not a perf feature: the live kernel's Event.succeed/
        # fail append ``(seq, fn, args)`` directly to ``sim._ready``, and
        # the scale-replay runs live-kernel events (resources, RPC) on this
        # simulator. The run loop drains it in exact (time, seq) merged
        # order, so event ordering is identical to a pure heap. Legacy
        # primitives never touch it — they keep paying the heap + closure
        # cost that makes this kernel the baseline.
        self._ready: deque = deque()

    # -- scheduling ------------------------------------------------------

    def _push(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s in the past")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, action))

    def _schedule_event(self, event, delay: float = 0.0) -> None:
        self._push(delay, event._process)

    def call_soon(self, fn: Callable, *args: Any) -> None:
        self._push(0.0, lambda: fn(*args))

    def call_in(self, delay: float, fn: Callable, *args: Any) -> None:
        self._push(delay, lambda: fn(*args))

    # -- event constructors ----------------------------------------------

    def event(self) -> LegacyEvent:
        return LegacyEvent(self)

    def timeout(self, delay: float, value: Any = None) -> LegacyTimeout:
        return LegacyTimeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> LegacyTimeout:
        # Pre-change kernels had no pool: every sleep is a fresh timeout.
        return LegacyTimeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> LegacyProcess:
        return LegacyProcess(self, gen, name)

    def all_of(self, events: Iterable) -> LegacyAllOf:
        return LegacyAllOf(self, events)

    def any_of(self, events: Iterable) -> LegacyAnyOf:
        return LegacyAnyOf(self, events)

    # -- running ----------------------------------------------------------

    def run(self, until: Any = None) -> Any:
        if self._running:
            raise SimulationError("simulator is already running")
        stop_event = None
        deadline: Optional[float] = None
        if isinstance(until, (LegacyEvent, _CoreEvent)):
            stop_event = until
            stop_event.add_callback(self._stop_callback)
        elif until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise SimulationError("until lies in the past")

        self._running = True
        heap = self._heap
        ready = self._ready
        try:
            while True:
                if ready:
                    if heap and heap[0][0] <= self.now \
                            and heap[0][1] < ready[0][0]:
                        _at, _seq, action = heapq.heappop(heap)
                    else:
                        _seq, fn, args = ready.popleft()
                        action = None
                elif heap:
                    at = heap[0][0]
                    if deadline is not None and at > deadline:
                        break
                    _at, _seq, action = heapq.heappop(heap)
                    self.now = at
                else:
                    break
                try:
                    if action is not None:
                        action()
                    else:
                        fn(*args)
                except StopSimulation:
                    break
            if deadline is not None and self.now < deadline:
                self.now = deadline
        finally:
            self._running = False

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "simulation ended before the until-event triggered")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    @staticmethod
    def _stop_callback(event) -> None:
        raise StopSimulation

    def peek(self) -> float:
        if self._ready:
            return self.now
        return self._heap[0][0] if self._heap else float("inf")
