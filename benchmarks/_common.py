"""Shared helpers for the figure-reproduction benchmarks.

Every ``bench_figXX`` module regenerates one table/figure from the
paper's evaluation: it builds the experiment's cell and workload, runs it
under ``benchmark.pedantic`` (one deterministic round — these are
simulations, not microbenchmarks), prints the figure's rows/series, and
asserts the paper's comparative *shape* (who wins, by roughly what
factor, where crossovers fall).

Run with::

    pytest benchmarks/ --benchmark-only -s

The experiment-harness primitives live in :mod:`repro.testing` so user
studies can reuse them; this module only adds the benchmark glue.
"""

from __future__ import annotations

from typing import Callable

# Re-exported for the bench modules.
from repro.testing import (cell_cpu_hosts, drive, key_with_primary_shard,
                           measure_gets, preload_keys, run_closed_loop,
                           total_cpu)

__all__ = ["run_once", "drive", "preload_keys", "measure_gets",
           "key_with_primary_shard", "total_cpu", "cell_cpu_hosts",
           "run_closed_loop"]


def run_once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
