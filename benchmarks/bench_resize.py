"""Online resize under traffic: handoff throughput and foreground cost.

Production CliqueMap resizes cells while they serve (§6.1): the
key-range handoff rides the RPC plane while foreground GETs keep their
RMA fast path and quorum on the authoritative cohort. This bench runs a
closed-loop GET/SET workload over a loaded cell, measures a fault-free
baseline window, then drives a full grow+shrink cycle through the
:class:`~repro.core.ResizeController` while the workload continues.

Shape to hold: **zero** foreground failures (no failed SET, no
non-HIT GET) across the whole run, handoff throughput of at least
``THROUGHPUT_FLOOR`` entries/s, and a foreground GET p99 during the
handoff within ``P99_IMPACT_CEILING``x of the baseline p99 (the handoff
must not melt the fast path). Writes ``BENCH_resize.json`` at the repo
root so the perf trajectory records the datapoint.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import write_bench_json
from repro.core import (Cell, CellSpec, GetStatus, RepairConfig,
                        ReplicationMode, SetStatus)
from repro.sim import RandomStream

KEYS = 400
VALUE_BYTES = 256
BASELINE_WINDOW = 0.3          # simulated seconds before the resize
POST_WINDOW = 0.1              # settle after the cycle completes
THROUGHPUT_FLOOR = 500.0       # backfilled entries per simulated second
P99_IMPACT_CEILING = 20.0      # p99(during) / p99(baseline)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_resize.json"


def _percentile(samples, pct):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(pct / 100 * len(ordered))))
    return ordered[index]


def run_datapoint() -> dict:
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=4, transport="pony",
        seed=1013, repair_config=RepairConfig(enabled=True,
                                              scan_interval=0.25)))
    sim = cell.sim
    reader = cell.connect_client()
    writer = cell.connect_client()
    rand = RandomStream(1013, "bench-resize")

    def key(i):
        return b"bench-%05d" % i

    def preload():
        for i in range(KEYS):
            result = yield from writer.set(key(i), b"v" * VALUE_BYTES)
            assert result.status is SetStatus.APPLIED

    sim.run(until=sim.process(preload()))

    latencies = {"baseline": [], "resize": [], "post": []}
    failures = {"gets": 0, "sets": 0}
    phase = ["baseline"]
    done = [False]

    def reader_loop():
        while not done[0]:
            i = rand.randint(0, KEYS - 1)
            t0 = sim.now
            result = yield from reader.get(key(i))
            latencies[phase[0]].append(sim.now - t0)
            if result.status is not GetStatus.HIT:
                failures["gets"] += 1
            yield sim.timeout(0.2e-3)

    def writer_loop():
        generation = 0
        while not done[0]:
            i = rand.randint(0, KEYS - 1)
            generation += 1
            result = yield from writer.set(key(i), b"w-%d" % generation)
            if result.status is not SetStatus.APPLIED:
                failures["sets"] += 1
            yield sim.timeout(1e-3)

    def driver():
        yield sim.timeout(BASELINE_WINDOW)
        phase[0] = "resize"
        resize_started = sim.now
        grow = yield from cell.grow(1)
        shrink = yield from cell.shrink(count=1)
        resize_seconds = sim.now - resize_started
        phase[0] = "post"
        yield sim.timeout(POST_WINDOW)
        done[0] = True
        return grow, shrink, resize_seconds

    procs = [sim.process(reader_loop()), sim.process(writer_loop())]
    driver_proc = sim.process(driver())
    sim.run(until=sim.all_of(procs + [driver_proc]))
    grow, shrink, resize_seconds = driver_proc.value

    stats = cell.resize.stats
    throughput = stats.entries_backfilled / resize_seconds
    p99_baseline = _percentile(latencies["baseline"], 99)
    p99_resize = _percentile(latencies["resize"], 99)
    result = {
        "benchmark": "resize_handoff",
        "transport": "pony",
        "keys": KEYS,
        "value_bytes": VALUE_BYTES,
        "grow": grow,
        "shrink": shrink,
        "resize_seconds": resize_seconds,
        "entries_backfilled": stats.entries_backfilled,
        "entries_purged": stats.entries_purged,
        "backfill_sweeps": stats.sweeps,
        "handoff_entries_per_sec": throughput,
        "failed_gets": failures["gets"],
        "failed_sets": failures["sets"],
        "gets_baseline": len(latencies["baseline"]),
        "gets_during_resize": len(latencies["resize"]),
        "p50_baseline_us": 1e6 * _percentile(latencies["baseline"], 50),
        "p50_resize_us": 1e6 * _percentile(latencies["resize"], 50),
        "p99_baseline_us": 1e6 * p99_baseline,
        "p99_resize_us": 1e6 * p99_resize,
        "p99_impact": p99_resize / p99_baseline,
        # Regression floors/ceilings asserted by the bench.
        "throughput_floor": THROUGHPUT_FLOOR,
        "p99_impact_ceiling": P99_IMPACT_CEILING,
    }
    reader.close()
    writer.close()
    cell.close()
    return result


def render(result: dict) -> str:
    return "\n".join([
        f"resize handoff — {result['keys']} keys x "
        f"{result['value_bytes']}B, grow+shrink cycle in "
        f"{result['resize_seconds'] * 1e3:.1f} ms",
        f"  backfill:   {result['entries_backfilled']} entries in "
        f"{result['backfill_sweeps']} sweeps "
        f"({result['handoff_entries_per_sec']:.0f} entries/s, "
        f"floor {result['throughput_floor']:.0f})",
        f"  foreground: {result['failed_gets']} failed GETs, "
        f"{result['failed_sets']} failed SETs over "
        f"{result['gets_baseline'] + result['gets_during_resize']} ops",
        f"  GET p99:    {result['p99_baseline_us']:.1f} us baseline -> "
        f"{result['p99_resize_us']:.1f} us during handoff "
        f"({result['p99_impact']:.1f}x, ceiling "
        f"{result['p99_impact_ceiling']:.0f}x)",
    ])


def bench_resize(benchmark):
    result = run_once(benchmark, run_datapoint)
    print()
    print(render(result))

    # Zero foreground impact on correctness: every GET hit, every SET
    # applied, both handoffs completed.
    assert result["failed_gets"] == 0, result
    assert result["failed_sets"] == 0, result
    assert result["grow"]["outcome"] == "completed", result
    assert result["shrink"]["outcome"] == "completed", result
    # The handoff actually moved the keyspace, fast enough.
    assert result["entries_backfilled"] >= KEYS, result
    assert result["handoff_entries_per_sec"] >= \
        result["throughput_floor"], result
    # Bounded foreground latency impact while the handoff runs.
    assert result["p99_impact"] <= result["p99_impact_ceiling"], result

    write_bench_json(result, str(OUTPUT))
    print(f"  wrote {OUTPUT.name}")
