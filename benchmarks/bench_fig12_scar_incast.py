"""Figure 12: SCAR vs 2xR with large values and client load (§7.2.2).

Under R=3.2, SCAR solicits three full copies of the datum (plus three
buckets), while 2xR fetches three buckets but only one copy of the
datum. For 64KB values that is ~195KB vs ~67KB per GET: SCAR transiently
incasts the client, and with competing load on the client's downlink it
loses its single-round-trip advantage. Takeaway: deploy SCAR when
values/batches are small relative to NIC speed.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import measure_gets, preload_keys, run_once

from repro.analysis import render_table
from repro.core import (BackendConfig, Cell, CellSpec, LookupStrategy,
                        ReplicationMode)

LARGE_VALUE = 64 * 1024
SMALL_VALUE = 1024
OPS = 120
CLIENT_LOAD_FRACTION = 0.70


def run_case(strategy: LookupStrategy, value_bytes: int, client_load: bool):
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, transport="pony",
        backend_config=BackendConfig(data_initial_bytes=4 << 20,
                                     data_virtual_limit=64 << 20)))
    client = cell.connect_client(strategy=strategy)
    keys = [b"big-%d" % i for i in range(4)]
    preload_keys(cell, client, keys, value_bytes)
    if client_load:
        cell.fabric.start_antagonist(
            client.host,
            CLIENT_LOAD_FRACTION * cell.fabric.config.host_rate_bytes_per_sec,
            direction="ingress")
        cell.sim.run(until=cell.sim.now + 2e-3)
    recorder = measure_gets(cell, client, keys, OPS, interval=50e-6)
    return recorder.percentile(50)


def run_experiment():
    results = {}
    for strategy, name in [(LookupStrategy.TWO_R, "2xR"),
                           (LookupStrategy.SCAR, "SCAR")]:
        results[(name, "no load")] = run_case(strategy, LARGE_VALUE, False)
        results[(name, "with load")] = run_case(strategy, LARGE_VALUE, True)
    # The small-value control: SCAR's advantage case.
    results[("2xR", "small")] = run_case(LookupStrategy.TWO_R, SMALL_VALUE,
                                         False)
    results[("SCAR", "small")] = run_case(LookupStrategy.SCAR, SMALL_VALUE,
                                          False)
    return results


def bench_fig12_scar_vs_2xr_incast(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [[name, cond, f"{median * 1e6:.1f}"]
            for (name, cond), median in results.items()]
    print()
    print(render_table(
        "Fig 12: SCAR vs 2xR median GET latency (64KB values)",
        ["strategy", "condition", "median latency (us)"], rows))

    # 64KB values: SCAR's 3x data incast makes it lose to 2xR...
    assert results[("SCAR", "no load")] > results[("2xR", "no load")]
    # ...and competing client ingress load makes the gap wider.
    scar_penalty_loaded = (results[("SCAR", "with load")] /
                           results[("2xR", "with load")])
    scar_penalty_unloaded = (results[("SCAR", "no load")] /
                             results[("2xR", "no load")])
    assert scar_penalty_loaded > scar_penalty_unloaded
    # Control: with small values SCAR's single round trip wins.
    assert results[("SCAR", "small")] < results[("2xR", "small")]
