"""Table 1: productionization challenges and CliqueMap's solutions.

One mini-experiment per row of the paper's Table 1, each demonstrating
the claimed solution end-to-end and reporting a quantitative witness:

1. Memory efficiency      — RPC-driven reshaping vs provision-for-peak.
2. Agile evolution        — a protocol change (new response field + a
                            version-gated server) tolerated by deployed
                            clients via self-validation and retries.
3. Availability           — R=3.2 quoruming through a backend failure.
4. Software interop       — Java/Go/Python shims serving the corpus.
5. Hardware heterogeneity — the same cell logic over Pony Express
                            (SCAR), 1RMA (2xR), generic RDMA (2xR), and
                            RPC-only (WAN fallback).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import drive, run_once

from repro.analysis import render_table
from repro.core import (BackendConfig, Cell, CellSpec, GetStatus,
                        LookupStrategy, ReplicationMode)
from repro.rpc import ProtocolVersion
from repro.shims import make_shim


def challenge_memory_efficiency():
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2,
                         transport="pony",
                         backend_config=BackendConfig(
                             data_initial_bytes=256 * 1024,
                             data_virtual_limit=16 << 20,
                             slab_bytes=64 * 1024)))
    client = cell.connect_client()

    def app():
        for i in range(200):
            yield from client.set(b"k-%d" % i, b"x" * 2000)
        yield cell.sim.timeout(1.0)

    drive(cell, app())
    used = cell.total_dram_bytes()
    peak = sum(b.index.total_bytes + b.data.arena.virtual_limit
               for b in cell.serving_backends())
    saving = 1 - used / peak
    assert saving > 0.5
    return f"{saving * 100:.0f}% DRAM saved vs provision-for-peak"


def challenge_evolution():
    """Server gains a new response field and a higher protocol version;
    deployed clients keep working (self-validating responses + version
    tolerance), and old-version clients are cleanly rejected rather than
    mis-served."""
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    client = cell.connect_client()

    def before():
        yield from client.set(b"k", b"v")
        result = yield from client.get(b"k")
        assert result.hit

    drive(cell, before())

    # "Deploy" an upgraded Info handler: extra fields, higher max version.
    for backend in cell.backends.values():
        original = backend._handle_info

        def upgraded(payload, context, _orig=original):
            info = yield from _orig(payload, context)
            info["new_feature_hint"] = {"compression": "snappy"}
            info["server_build"] = "cm-2.1"
            return info

        backend.rpc_server.register("Info", upgraded)
        backend.rpc_server.max_version = ProtocolVersion(2, 99)

    def after():
        # Existing client: unknown fields ignored, operations keep working.
        result = yield from client.get(b"k")
        assert result.hit
        yield from client.set(b"k2", b"v2")
        result = yield from client.get(b"k2")
        assert result.hit

    drive(cell, after())
    return "100+ field additions tolerated (unknown fields ignored)"


def challenge_availability():
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)

    def app():
        for i in range(40):
            yield from client.set(b"k-%d" % i, b"v")
        cell.backend_by_task("backend-1").crash()
        hits = 0
        for i in range(40):
            result = yield from client.get(b"k-%d" % i)
            hits += result.hit
        return hits

    hits = drive(cell, app())
    assert hits == 40
    return "40/40 reads served through a backend failure (R=3.2)"


def challenge_interoperability():
    served = []
    for language in ["java", "go", "py"]:
        cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2,
                             transport="pony"))
        shim = make_shim(cell.connect_client(), language)

        def app():
            yield from shim.set(b"shared", b"corpus")
            result = yield from shim.get(b"shared")
            assert result.hit and result.value == b"corpus"

        drive(cell, app())
        served.append(language)
    return f"corpus served to {'/'.join(served)} via subprocess shims"


def challenge_heterogeneity():
    latencies = {}
    for transport, strategy in [("pony", LookupStrategy.SCAR),
                                ("1rma", LookupStrategy.TWO_R),
                                ("rdma", LookupStrategy.TWO_R),
                                ("pony", LookupStrategy.RPC)]:
        cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=2,
                             transport=transport))
        client = cell.connect_client(strategy=strategy)

        def app():
            yield from client.set(b"k", b"v" * 64)
            result = yield from client.get(b"k")
            assert result.status is GetStatus.HIT
            return result.latency

        label = f"{transport}/{strategy.value}"
        latencies[label] = drive(cell, app())
    # All RMA paths land in the same order of magnitude (a relatively
    # uniform performance envelope); RPC is the slow fallback.
    rma = [v for k, v in latencies.items() if not k.endswith("rpc")]
    assert max(rma) < 5 * min(rma)
    assert latencies["pony/rpc"] > max(rma)
    return ("uniform envelope: " +
            ", ".join(f"{k}={v * 1e6:.0f}us" for k, v in latencies.items()))


def run_experiment():
    return [
        ["1. Memory efficiency", challenge_memory_efficiency()],
        ["2. Agile evolution", challenge_evolution()],
        ["3. Availability", challenge_availability()],
        ["4. Software interoperability", challenge_interoperability()],
        ["5. Hardware heterogeneity", challenge_heterogeneity()],
    ]


def bench_table1_productionization(benchmark):
    rows = run_once(benchmark, run_experiment)
    print()
    print(render_table("Table 1: productionization challenges — witnessed",
                       ["challenge", "witness"], rows))
    assert len(rows) == 5
