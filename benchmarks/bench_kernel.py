"""Kernel fast-path benchmark: live scheduler vs the pre-change kernel.

Runs the deterministic stress mix (``KERNEL_STRESS_SHAPES`` — weighted
toward zero-delay scheduling to match the measured profile of a real
cell run, which is ~53% zero-delay) on both the live ``Simulator`` and
the verbatim pre-optimization kernel in ``_legacy_kernel``. Repeats are
interleaved arm-by-arm so machine drift (thermal throttling, noisy
neighbours) cannot land on one side of the ratio.

Asserts the tentpole acceptance floor — at least 2x events/sec over the
pre-change kernel — plus a machine-relative regression gate: if a
committed ``BENCH_kernel.json`` records a ``floor_events_per_sec``, the
live kernel must stay within 20% of it. Writes both kernels' numbers to
``BENCH_kernel.json`` at the repo root so the perf trajectory records
the optimization.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once
from _legacy_kernel import LegacySimulator

from repro.analysis import compare_kernel_stress, write_bench_json
from repro.sim import Simulator

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

SPEEDUP_FLOOR = 2.0     # tentpole acceptance: >= 2x events/sec
REGRESSION_SLACK = 0.8  # fail if below 80% of the committed floor


def _render_table(result) -> str:
    lines = ["  shape       live ev/s    legacy ev/s   speedup",
             "  ---------  -----------  -------------  -------"]
    for name, live in result["new"]["shapes"].items():
        legacy = result["legacy"]["shapes"][name]
        lines.append(
            f"  {name:<9}  {live['events_per_sec']:>9,.0f}/s"
            f"  {legacy['events_per_sec']:>11,.0f}/s"
            f"  {live['events_per_sec'] / legacy['events_per_sec']:>6.2f}x")
    lines.append(
        f"  {'overall':<9}  {result['new']['events_per_sec']:>9,.0f}/s"
        f"  {result['legacy']['events_per_sec']:>11,.0f}/s"
        f"  {result['speedup']:>6.2f}x")
    return "\n".join(lines)


def bench_kernel_fastpath(benchmark):
    result = run_once(
        benchmark,
        lambda: compare_kernel_stress(Simulator, LegacySimulator,
                                      repeats=3))
    print()
    print(_render_table(result))

    new_rate = result["new"]["events_per_sec"]

    # Tentpole acceptance: the rewritten scheduler must run the identical
    # event mix at >= 2x the pre-change kernel's rate.
    assert result["speedup"] >= SPEEDUP_FLOOR, result

    # Machine-relative regression gate against the committed datapoint.
    if OUTPUT.exists():
        committed = json.loads(OUTPUT.read_text())
        floor = committed.get("floor_events_per_sec")
        if floor:
            assert new_rate >= REGRESSION_SLACK * floor, (
                f"kernel events/sec regressed: {new_rate:,.0f}/s is below "
                f"{REGRESSION_SLACK:.0%} of the recorded floor "
                f"{floor:,.0f}/s")

    write_bench_json({
        "benchmark": "kernel",
        "new": result["new"],
        "legacy": result["legacy"],
        "speedup": result["speedup"],
        # Conservative machine-dependent floor: half the measured rate,
        # so ordinary CI jitter passes but a real fast-path regression
        # (losing the ready queue, reintroducing per-action closures)
        # trips the 80% gate above.
        "floor_events_per_sec": new_rate / 2,
    }, str(OUTPUT))
    print(f"  wrote {OUTPUT.name}")
