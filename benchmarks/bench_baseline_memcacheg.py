"""Baseline comparison: CliqueMap vs the fully RPC-based MemcacheG (§1, §2.1).

The paper's core motivation quantified: an RPC KVCS pays >50 CPU-µs per
op even when the server-side work is a handful of memory accesses, which
caps op rate and wastes the DRAM-cost advantage of a distributed cache.
CliqueMap's RMA read path removes that floor.

Measured per system, identical substrate and workload: peak closed-loop
GET rate per worker, combined client+server CPU per GET, and median GET
latency.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import render_table
from repro.baselines import MemcacheGCluster
from repro.core import Cell, CellSpec, LookupStrategy, ReplicationMode

OPS = 400
VALUE_BYTES = 64
WORKERS = 4


def measure_cliquemap(strategy: LookupStrategy):
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=4,
                         transport="pony"))
    client = cell.connect_client(strategy=strategy)
    sim = cell.sim
    hosts = [client.host] + [b.host for b in cell.serving_backends()]

    def setup():
        yield from client.set(b"k", b"v" * VALUE_BYTES)

    sim.run(until=sim.process(setup()))
    cpu_before = sum(h.ledger.total() for h in hosts)
    start = sim.now
    latencies = []

    def worker():
        for _ in range(OPS // WORKERS):
            result = yield from client.get(b"k")
            assert result.hit
            latencies.append(result.latency)

    procs = [sim.process(worker()) for _ in range(WORKERS)]
    sim.run(until=sim.all_of(procs))
    elapsed = sim.now - start
    cpu = sum(h.ledger.total() for h in hosts) - cpu_before
    latencies.sort()
    return (OPS / elapsed, cpu / OPS * 1e6,
            latencies[len(latencies) // 2] * 1e6)


def measure_memcacheg():
    cluster = MemcacheGCluster(num_shards=4)
    client = cluster.make_client()
    sim = cluster.sim
    hosts = [client.host] + [s.host for s in cluster.servers]

    def setup():
        yield from client.set(b"k", b"v" * VALUE_BYTES)

    sim.run(until=sim.process(setup()))
    cpu_before = sum(h.ledger.total() for h in hosts)
    start = sim.now
    latencies = []

    def worker():
        for _ in range(OPS // WORKERS):
            t0 = sim.now
            found, _value = yield from client.get(b"k")
            assert found
            latencies.append(sim.now - t0)

    procs = [sim.process(worker()) for _ in range(WORKERS)]
    sim.run(until=sim.all_of(procs))
    elapsed = sim.now - start
    cpu = sum(h.ledger.total() for h in hosts) - cpu_before
    latencies.sort()
    return (OPS / elapsed, cpu / OPS * 1e6,
            latencies[len(latencies) // 2] * 1e6)


def run_experiment():
    return {
        "CliqueMap SCAR": measure_cliquemap(LookupStrategy.SCAR),
        "CliqueMap 2xR": measure_cliquemap(LookupStrategy.TWO_R),
        "MemcacheG (RPC)": measure_memcacheg(),
    }


def bench_baseline_memcacheg_comparison(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [[name, f"{rate:,.0f}", f"{cpu:.1f}", f"{latency:.1f}"]
            for name, (rate, cpu, latency) in results.items()]
    print()
    print(render_table(
        "CliqueMap vs MemcacheG (64B GETs, 4 workers)",
        ["system", "GET/s", "CPU-us/GET (client+server)",
         "median latency (us)"], rows))

    scar = results["CliqueMap SCAR"]
    two_r = results["CliqueMap 2xR"]
    memcacheg = results["MemcacheG (RPC)"]
    # The RPC baseline pays the >50us floor; RMA paths don't.
    assert memcacheg[1] > 50.0
    assert scar[1] < memcacheg[1] / 10
    assert two_r[1] < memcacheg[1] / 8
    # Peak op rate: RMA wins by a wide margin.
    assert scar[0] > 3 * memcacheg[0]
    # Latency: the RMA paths are several times faster.
    assert scar[2] < memcacheg[2] / 3
