"""Figure 15: Pony Express load ramp with engine scale-out (§7.2.4).

An R=1 cell using SCAR and 4KB values; offered load ramps up in steps
with no idle gaps (as in the paper's continuous ramp). Pony engines are
single-threaded and scale out to more cores in response to load. Hosts
running both a backend and clients (co-tenant) are busier and scale out
first; client-only hosts follow at higher load, and that client-side
scale-out tames tail latency even as the ramp continues.

Engine service costs are scaled up (a deliberately slow software NIC) so
the scale-out dynamics appear at simulation-friendly op rates; the
paper's 400M GET/s testbed behavior is shape-identical.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import render_table
from repro.core import (BackendConfig, Cell, CellSpec, LookupStrategy,
                        ReplicationMode, SetStatus)
from repro.net import Fabric, FabricConfig
from repro.sim import RandomStream, Simulator
from repro.transport import PonyCostModel, PonyScaleConfig, PonyTransport

BACKENDS = 4
CO_TENANT_CLIENTS = 4       # one on each backend host
CLIENT_ONLY_CLIENTS = 4
VALUE_BYTES = 4096
RATE_STEPS = [4000.0, 12000.0, 30000.0, 60000.0, 120000.0]  # per client
STEP_SECONDS = 25e-3


def max_engines_during(group, start, end):
    """Peak engine count a group reached within a time window."""
    count = group.engines_at(start)
    peak = count
    for at, cap in group.scale_history:
        if start <= at <= end:
            peak = max(peak, cap)
    return peak


def run_experiment():
    sim = Simulator()
    fabric = Fabric(sim, FabricConfig())
    transport = PonyTransport(
        sim, fabric,
        cost_model=PonyCostModel(client_tx=2.2e-6, client_rx=2.6e-6,
                                 server_read=2.8e-6, scar_scan=0.8e-6,
                                 per_kilobyte=0.05e-6),
        scale=PonyScaleConfig(base_engines=1, max_engines=4,
                              sample_interval=1e-3,
                              scale_up_threshold=0.45,
                              scale_down_threshold=0.15))
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=BACKENDS,
                         transport="pony",
                         backend_config=BackendConfig(
                             data_initial_bytes=4 << 20,
                             data_virtual_limit=64 << 20)),
                sim=sim, fabric=fabric, transport=transport)

    clients = []
    for shard in range(CO_TENANT_CLIENTS):
        backend = cell.backend_by_task(cell.task_for_shard(shard))
        clients.append(cell.connect_client(host=backend.host,
                                           strategy=LookupStrategy.SCAR))
    for _ in range(CLIENT_ONLY_CLIENTS):
        clients.append(cell.connect_client(strategy=LookupStrategy.SCAR))

    keys = [b"obj-%d" % i for i in range(64)]

    def setup():
        for key in keys:
            result = yield from clients[0].set(key, bytes(VALUE_BYTES))
            assert result.status is SetStatus.APPLIED

    sim.run(until=sim.process(setup()))

    co_tenant_groups = [
        transport.engine_group(
            cell.backend_by_task(cell.task_for_shard(s)).host)
        for s in range(BACKENDS)]
    client_only_groups = [transport.engine_group(c.host)
                          for c in clients[CO_TENANT_CLIENTS:]]

    # Every client records GET latency into the cell's shared registry;
    # per-step percentiles are deltas against a sample-count checkpoint
    # taken at the start of the step (Histogram.percentile(p, start=...)).
    latency = cell.metrics.histogram("cliquemap_op_latency_seconds").labels(
        op="get", strategy=LookupStrategy.SCAR.value)

    stream = RandomStream(99, "ramp")
    rows = []
    for step, rate in enumerate(RATE_STEPS):
        checkpoint = latency.count
        step_start = sim.now
        end = step_start + STEP_SECONDS

        def load(client, arrivals):
            i = 0
            while sim.now < end:
                yield sim.timeout(arrivals.expovariate(rate))
                proc = sim.process(client.get(keys[i % len(keys)]))
                proc.defused = True
                i += 1

        procs = [sim.process(load(c, stream.child(f"{step}-{j}")))
                 for j, c in enumerate(clients)]
        sim.run(until=sim.all_of(procs))
        co = sum(max_engines_during(g, step_start, sim.now)
                 for g in co_tenant_groups) / len(co_tenant_groups)
        client_only = sum(max_engines_during(g, step_start, sim.now)
                          for g in client_only_groups) / len(client_only_groups)
        rows.append([
            f"{rate * len(clients):,.0f}",
            latency.percentile(50, start=checkpoint) * 1e6,
            latency.percentile(90, start=checkpoint) * 1e6,
            latency.percentile(99, start=checkpoint) * 1e6,
            f"{co:.2f}",
            f"{client_only:.2f}",
        ])
    return rows


def bench_fig15_pony_express_ramp(benchmark):
    rows = run_once(benchmark, run_experiment)
    print()
    print(render_table(
        "Fig 15: Pony Express load ramp",
        ["offered GET/s", "50p (us)", "90p (us)", "99p (us)",
         "engines/co-tenant host", "engines/client-only host"], rows))

    co = [float(r[4]) for r in rows]
    client_only = [float(r[5]) for r in rows]
    p99 = [r[3] for r in rows]
    p50 = [r[1] for r in rows]
    # Co-tenant hosts (backend + client on one host) scale out first:
    # strictly more engines than client-only hosts mid-ramp.
    assert co[3] > client_only[3]
    # By the top of the ramp both classes have scaled out.
    assert co[-1] >= 2.0
    assert client_only[-1] >= 1.5
    # Scale-out keeps p99 from being worst at peak load: the tail maximum
    # happens mid-ramp (during a scale-out transient), not at the top.
    assert p99[-1] < max(p99)
    # Significant capacity headroom: median stays bounded at peak.
    assert p50[-1] < 10 * p50[0]
