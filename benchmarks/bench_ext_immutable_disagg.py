"""Extension benches: R=2/Immutable mode (§6.4) and disaggregation (§6.5).

Not a numbered figure — these sections describe post-launch modes whose
value the paper states qualitatively. The benches quantify both claims:

* §6.4: an immutable corpus served from an R=2 cell cuts lookup latency
  by orders of magnitude vs the durable system of record, while
  consulting only one replica per GET (vs three under R=3.2) and using
  2/3 of R=3.2's DRAM.
* §6.5: fetching shards from CliqueMap instead of holding them in every
  serving task trades nanosecond lookups for microsecond ones and
  decouples DRAM from compute scale.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import render_table
from repro.core import (Cell, CellSpec, GetStatus, LookupStrategy,
                        ReplicationMode)
from repro.rpc import Principal, connect as rpc_connect
from repro.storage import CorpusLoader, SystemOfRecord

NUM_KEYS = 300
VALUE_BYTES = 1200
LOOKUPS = 300


def build_loaded_cell(mode):
    cell = Cell(CellSpec(mode=mode, num_shards=4, transport="pony"))
    sor_host = cell.fabric.add_host("host/sor")
    sor = SystemOfRecord(cell.sim, sor_host)
    sor.load({b"doc-%d" % i: bytes(VALUE_BYTES)
              for i in range(NUM_KEYS)})
    sor.freeze()
    loader = CorpusLoader(cell, sor)
    report = cell.sim.run(until=cell.sim.process(loader.load()))
    return cell, sor, report


def measure_cell(cell, sor):
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)
    sor_channel = rpc_connect(cell.sim, cell.fabric, client.host,
                              sor.rpc_server, Principal("app"))

    def app():
        reads_before = cell.transport.counters.reads
        cache_latency = []
        for i in range(LOOKUPS):
            result = yield from client.get(b"doc-%d" % (i % NUM_KEYS))
            assert result.status is GetStatus.HIT
            cache_latency.append(result.latency)
        rma_reads = cell.transport.counters.reads - reads_before
        start = cell.sim.now
        for i in range(20):
            yield from sor_channel.call("Read", {"key": b"doc-%d" % i})
        sor_latency = (cell.sim.now - start) / 20
        cache_latency.sort()
        return (cache_latency[len(cache_latency) // 2], sor_latency,
                rma_reads / LOOKUPS)

    return cell.sim.run(until=cell.sim.process(app()))


def run_experiment():
    results = {}
    for mode, label in [(ReplicationMode.R2_IMMUTABLE, "R=2/Immutable"),
                        (ReplicationMode.R3_2, "R=3.2")]:
        cell, sor, report = build_loaded_cell(mode)
        cache_median, sor_latency, reads_per_get = measure_cell(cell, sor)
        results[label] = {
            "cache_median": cache_median,
            "sor_latency": sor_latency,
            "reads_per_get": reads_per_get,
            "dram": cell.total_dram_bytes(),
            "replicas_written": report.replicas_written,
        }
    return results


def bench_ext_r2_immutable_and_disaggregation(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = []
    for label, r in results.items():
        rows.append([label,
                     f"{r['cache_median'] * 1e6:.1f}",
                     f"{r['sor_latency'] * 1e6:.0f}",
                     f"{r['reads_per_get']:.1f}",
                     f"{r['dram'] / 1e6:.2f}",
                     r["replicas_written"]])
    print()
    print(render_table(
        "§6.4/§6.5: cached immutable corpus vs system of record",
        ["mode", "cache median (us)", "SoR read (us)", "RMA reads/GET",
         "DRAM (MB)", "replica writes at load"], rows))

    r2 = results["R=2/Immutable"]
    r32 = results["R=3.2"]
    # The cache beats persistent storage by orders of magnitude.
    assert r2["sor_latency"] > 20 * r2["cache_median"]
    # R=2 consults one replica (2 reads: index+data); R=3.2 quorums
    # (3 index + 1 data).
    assert r2["reads_per_get"] == pytest_approx(2.0)
    assert r32["reads_per_get"] >= 3.5
    # Two copies instead of three: 2/3 of the replica writes (and, for
    # corpora large relative to the backends' base footprint, 2/3 of the
    # DRAM; this small corpus sits inside the initial arenas).
    assert r2["replicas_written"] == 2 * NUM_KEYS
    assert r32["replicas_written"] == 3 * NUM_KEYS
    assert r2["dram"] <= r32["dram"]


def pytest_approx(value, rel=0.01):
    import pytest
    return pytest.approx(value, rel=rel)
