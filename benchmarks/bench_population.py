"""Population-scale smoke: 10^7 offered key-ops against a 1000-host cell.

Two checks ride on one module:

* **Scale** — an aggregate :class:`~repro.workloads.ClientPopulation`
  models one million clients (5 GETs/s each, 2 simulated seconds — a
  10M-key-op offered load) against a 1000-host R=3.2 cell on a pool of
  8 driver processes, with op-sampling thinning the driven load to a
  measurable slice. The whole thing — cell build, preload, run — must
  finish inside a 60 s wall budget with zero errors; the offered-per-
  wall-second datapoint lands in ``BENCH_population.json`` with a
  regression floor.
* **Fidelity** — the population model must be a *measurement* device,
  not a different workload. ``compare_population`` replays one seed with
  N real open-loop clients and with the aggregate model and asserts the
  latency distributions (two-sample KS), hit rates, and delivered-op
  counts agree within tolerance.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import compare_population, run_population_arm

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_population.json"

NUM_HOSTS = 1000
MODELED_CLIENTS = 1_000_000
RATE_PER_CLIENT = 5.0            # offered GETs/s per modeled client
DURATION = 2.0                   # simulated seconds
OFFERED_FLOOR = 10_000_000       # key-ops the run must offer
OP_SAMPLE_RATE = 0.002           # drive a ~20k-key-op measured slice
DRIVERS = 4
BATCH_MEDIAN = 40.0              # ~250k arrival events at 10M key-ops
NUM_KEYS = 2_000_000             # zipf corpus; preload the hot head only
PRELOAD_KEYS = 2048
# 1RMA for the scale arm: the pony engine autoscaler's 200us utilization
# sampler is ~5k events/sim-second *per host* — at 1000 hosts over 2
# sim-seconds that alone is ~10M events, swamping the workload under
# measure. Fidelity (below) stays on the default pony transport.
TRANSPORT = "1rma"
WALL_BUDGET_SECONDS = 60.0

# Regression floor: offered key-ops per wall-clock second for the scale
# run. Fresh-container calibration lands ~4x above this; the floor
# catches order-of-magnitude regressions, not scheduler jitter.
OFFERED_PER_WALL_SEC_FLOOR = 100_000.0

# Fidelity tolerances (seeded, so these are deterministic bounds, not
# flaky statistical tests — see tests/integration/test_population.py
# for the per-seed margins).
KS_TOLERANCE = 0.15
HIT_RATE_TOLERANCE = 0.05
DELIVERED_RATIO_BAND = (0.85, 1.15)


def _run_population_scale():
    return run_population_arm(
        "population",
        num_modeled=MODELED_CLIENTS,
        rate_per_client=RATE_PER_CLIENT,
        duration=DURATION,
        num_drivers=DRIVERS,
        num_hosts=NUM_HOSTS,
        num_keys=NUM_KEYS,
        transport=TRANSPORT,
        preload_fraction=PRELOAD_KEYS / NUM_KEYS,
        batch_median=BATCH_MEDIAN,
        op_sample_rate=OP_SAMPLE_RATE,
        seed=7)


def bench_population_scale(benchmark):
    run = run_once(benchmark, _run_population_scale)
    print()
    print(f"  hosts={NUM_HOSTS} modeled_clients={MODELED_CLIENTS:,} "
          f"drivers={run['drivers']}")
    print(f"  offered={run['offered']:,} driven={run['driven']:,} "
          f"(sample_rate={run['op_sample_rate']}) shed={run['shed']:,}")
    print(f"  ops={run['ops']:,} hit_rate={run['hit_rate']:.3f} "
          f"errors={run['errors']} "
          f"p99={run['latency_us']['p99']:.0f}us")
    print(f"  wall={run['wall_seconds']:.1f}s "
          f"(budget {WALL_BUDGET_SECONDS:.0f}s) "
          f"events/s={run['events_per_sec']:,.0f} "
          f"offered/wall-s={run['offered_per_wall_sec']:,.0f}")

    assert run["offered"] >= OFFERED_FLOOR, run["offered"]
    assert run["errors"] == 0, run
    assert run["wall_seconds"] < WALL_BUDGET_SECONDS, (
        f"population smoke too slow: {run['wall_seconds']:.1f}s "
        f"for {run['offered']:,} offered key-ops")
    assert run["offered_per_wall_sec"] >= OFFERED_PER_WALL_SEC_FLOOR, (
        f"offered/wall-s regressed: {run['offered_per_wall_sec']:,.0f} "
        f"< floor {OFFERED_PER_WALL_SEC_FLOOR:,.0f}")

    del run["latency_samples"]
    record = {
        "benchmark": "population",
        "floor_offered_per_wall_sec": OFFERED_PER_WALL_SEC_FLOOR,
        "scale": run,
    }
    if OUTPUT.exists():
        prior = json.loads(OUTPUT.read_text())
        record["fidelity"] = prior.get("fidelity")
    OUTPUT.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {OUTPUT.name} (scale section)")


def bench_population_fidelity(benchmark):
    """N real clients vs the aggregate model, one seed: the shapes must
    agree. Small cell — fidelity is a property of the arrival/identity
    model, not of the cell size."""
    def arms():
        return compare_population(num_modeled=16, num_drivers=2,
                                  rate_per_client=400.0, duration=0.5,
                                  seed=11)

    result = run_once(benchmark, arms)
    cmp = result["comparison"]
    print()
    print(f"  real: ops={result['real']['ops']:,} "
          f"hit_rate={result['real']['hit_rate']:.4f} "
          f"p99={result['real']['latency_us']['p99']:.0f}us")
    print(f"  pop:  ops={result['population']['ops']:,} "
          f"hit_rate={result['population']['hit_rate']:.4f} "
          f"p99={result['population']['latency_us']['p99']:.0f}us")
    print(f"  ks={cmp['ks_distance']:.4f} "
          f"hit_delta={cmp['hit_rate_delta']:.4f} "
          f"delivered_ratio={cmp['delivered_ratio']:.3f} "
          f"p99_ratio={cmp['p99_ratio']:.3f}")

    assert cmp["ks_distance"] < KS_TOLERANCE, cmp
    assert cmp["hit_rate_delta"] < HIT_RATE_TOLERANCE, cmp
    lo, hi = DELIVERED_RATIO_BAND
    assert lo < cmp["delivered_ratio"] < hi, cmp

    if OUTPUT.exists():
        record = json.loads(OUTPUT.read_text())
    else:
        record = {"benchmark": "population"}
    record["fidelity"] = result
    OUTPUT.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {OUTPUT.name} (fidelity section)")
