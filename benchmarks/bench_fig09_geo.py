"""Figure 9: the Geo workload over time (§7.1).

Diurnal GET traffic (~3x swing over a day) intermixed with a steady
corpus-update SET rate from separate updater jobs. The takeaway the
bench must hold: despite the large rate swing, tail latency varies
minimally.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import render_percentile_lines, render_table
from repro.workloads import GeoScenario, GeoWorkload


def run_experiment():
    scenario = GeoScenario(num_shards=6, num_clients=4, num_updaters=2,
                           num_keys=800, base_get_rate_per_client=2500.0,
                           day_length=2.0, duration=4.0,
                           update_rate_per_client=150.0)
    workload = GeoWorkload(scenario)
    workload.preload()
    metrics = workload.run()
    return workload, metrics


def bench_fig09_geo_workload(benchmark):
    workload, metrics = run_once(benchmark, run_experiment)
    timeline = metrics.get_timeline
    # Trim the partial first/last bins (ramp-in / drain).
    rates = [r for _t, r in timeline.rate_series()][1:-1]
    p999 = [v * 1e6 for _t, v in timeline.series(99.9)][1:-1]

    print()
    print(render_table(
        "Fig 9: Geo workload summary", ["metric", "value"],
        [["GET ops", metrics.gets],
         ["SET ops", metrics.sets],
         ["peak GET/s", f"{max(rates):,.0f}"],
         ["trough GET/s", f"{min(rates):,.0f}"],
         ["rate swing", f"{max(rates) / max(min(rates), 1e-9):.1f}x"],
         ["p99.9 max (us)", f"{max(p999):.0f}"],
         ["p99.9 min (us)", f"{min(p999):.0f}"],
         ["p99.9 swing", f"{max(p999) / max(min(p999), 1e-9):.1f}x"]]))
    print()
    print(render_percentile_lines(
        "Fig 9: Geo latency percentiles (us) and rate over time",
        [("50p", [(t, v * 1e6) for t, v in timeline.series(50)]),
         ("99p", [(t, v * 1e6) for t, v in timeline.series(99)]),
         ("99.9p", [(t, v * 1e6) for t, v in timeline.series(99.9)]),
         ("GET/s", timeline.rate_series())],
        x_label="t (s)"))

    # Shapes: ~3x diurnal GET swing; tail latency swing far smaller than
    # the traffic swing; updates flow continuously.
    assert max(rates) > 2.0 * min(rates)
    assert max(p999) / max(min(p999), 1e-9) < max(rates) / min(rates)
    assert metrics.sets > 100
    assert metrics.get_errors == 0
