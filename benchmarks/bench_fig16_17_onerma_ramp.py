"""Figures 16 & 17: the 1RMA load ramp (§7.2.4).

1RMA's serving path is entirely hardware: no SCAR (every GET is 2xR, two
fabric RTTs), but no software bottleneck on the serving side either.
Two plots:

* Fig 16 — NIC command-executor timestamps (combined fabric + remote
  PCIe latency): rises only marginally with load, far from saturation.
* Fig 17 — end-to-end GET latency: dominated by CPU time in the
  CliqueMap client, *highest at the lowest load* because idle client
  cores fall into deep C-states, and flat (insensitive to load) once the
  ramp passes the C-state regime.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import LatencyRecorder, render_table
from repro.core import (Cell, CellSpec, LookupStrategy, ReplicationMode,
                        SetStatus)
from repro.net import CStateModel, HostConfig
from repro.sim import RandomStream

BACKENDS = 4
CLIENTS = 4
VALUE_BYTES = 4096
RATE_STEPS = [300.0, 1500.0, 6000.0, 20000.0, 50000.0]  # per client
STEP_SECONDS = 40e-3


def run_experiment():
    cell = Cell(CellSpec(mode=ReplicationMode.R1, num_shards=BACKENDS,
                         transport="1rma"))
    sim = cell.sim
    # Clients run on hosts with C-states enabled: the idle-wakeup penalty
    # is what produces Fig 17's low-load latency bump.
    client_host_config = HostConfig(
        cores=4, c_state=CStateModel(enabled=True, idle_threshold=150e-6,
                                     wakeup_latency=40e-6))
    clients = [cell.connect_client(
        host_config=client_host_config,
        strategy=LookupStrategy.TWO_R) for _ in range(CLIENTS)]
    keys = [b"obj-%d" % i for i in range(32)]

    def setup():
        for key in keys:
            result = yield from clients[0].set(key, bytes(VALUE_BYTES))
            assert result.status is SetStatus.APPLIED

    sim.run(until=sim.process(setup()))

    transport = cell.transport
    stream = RandomStream(5, "1rma-ramp")
    rows = []
    for step, rate in enumerate(RATE_STEPS):
        recorder = LatencyRecorder()
        nic_before = len(transport.command_timestamps)
        end = sim.now + STEP_SECONDS

        def load(client, arrivals):
            i = 0
            while sim.now < end:
                yield sim.timeout(arrivals.expovariate(rate))
                result = yield from client.get(keys[i % len(keys)])
                if result.hit:
                    recorder.record(result.latency)
                i += 1

        procs = [sim.process(load(c, stream.child(f"{step}-{j}")))
                 for j, c in enumerate(clients)]
        sim.run(until=sim.all_of(procs))
        nic_samples = sorted(
            lat for _t, lat in transport.command_timestamps[nic_before:])
        mid = nic_samples[len(nic_samples) // 2] if nic_samples else 0.0
        p99 = nic_samples[int(len(nic_samples) * 0.99)] if nic_samples else 0.0
        rows.append([f"{rate * CLIENTS:,.0f}",
                     mid * 1e6, p99 * 1e6,
                     recorder.percentile(50) * 1e6,
                     recorder.percentile(99) * 1e6])
    return rows


def bench_fig16_17_onerma_ramp(benchmark):
    rows = run_once(benchmark, run_experiment)
    print()
    print(render_table(
        "Fig 16/17: 1RMA load ramp",
        ["offered GET/s", "fabric+PCIe 50p (us)", "fabric+PCIe 99p (us)",
         "GET 50p (us)", "GET 99p (us)"], rows))

    nic50 = [r[1] for r in rows]
    get50 = [r[3] for r in rows]
    get99 = [r[4] for r in rows]
    # Fig 16: fabric+PCIe latency rises only marginally with load — far
    # short of saturating the hardware path.
    assert nic50[-1] < 2.0 * nic50[0]
    # Fig 17: the *highest* GET latency appears at the lowest load —
    # C-state wake-ups on idle client cores.
    assert get50[0] > 1.3 * get50[-1]
    assert get99[0] >= 0.95 * max(get99)
    assert get99[-1] < 0.6 * get99[0]
    # Once C-states are out of the picture, latency is insensitive to
    # load across more than an order of magnitude of offered rate.
    steady = get50[2:]
    assert max(steady) < 1.5 * min(steady)
