"""Figure 20: performance under varying value sizes (§7.2.5).

Fixed GET rate, value sizes swept 32B .. 16KB. For the sizes common in
production (small, below MTU) per-op fixed costs dominate — latency is
nearly flat — with per-byte costs only appearing at the largest sizes.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import LatencyRecorder, render_table
from repro.core import (BackendConfig, Cell, CellSpec, LookupStrategy,
                        ReplicationMode, SetStatus)
from repro.sim import RandomStream

SIZES = [32, 256, 2048, 16384]
OPS_PER_SIZE = 600
GET_FRACTION = 0.9
KEYS = 32


def run_size(value_bytes: int):
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, transport="pony",
        backend_config=BackendConfig(data_initial_bytes=4 << 20,
                                     data_virtual_limit=64 << 20)))
    client = cell.connect_client(strategy=LookupStrategy.TWO_R)
    sim = cell.sim
    keys = [b"obj-%d" % i for i in range(KEYS)]

    def setup():
        for key in keys:
            result = yield from client.set(key, bytes(value_bytes))
            assert result.status is SetStatus.APPLIED

    sim.run(until=sim.process(setup()))
    get_latency = LatencyRecorder()
    set_latency = LatencyRecorder()
    stream = RandomStream(31, f"size-{value_bytes}")

    def loop():
        for i in range(OPS_PER_SIZE):
            key = keys[i % KEYS]
            if stream.bernoulli(GET_FRACTION):
                result = yield from client.get(key)
                get_latency.record(result.latency)
            else:
                result = yield from client.set(key, bytes(value_bytes))
                set_latency.record(result.latency)
            yield sim.timeout(50e-6)  # fixed, moderate rate

    sim.run(until=sim.process(loop()))
    return get_latency, set_latency


def run_experiment():
    return {size: run_size(size) for size in SIZES}


def bench_fig20_value_size_sweep(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = []
    for size, (get_lat, set_lat) in results.items():
        rows.append([size,
                     get_lat.percentile(50) * 1e6,
                     get_lat.percentile(99) * 1e6,
                     set_lat.percentile(50) * 1e6,
                     set_lat.percentile(99) * 1e6])
    print()
    print(render_table(
        "Fig 20: latency (us) vs value size",
        ["value size (B)", "GET 50p", "GET 99p", "SET 50p", "SET 99p"],
        rows))

    get50 = {size: r[0].percentile(50) for size, r in results.items()}
    set50 = {size: r[1].percentile(50) for size, r in results.items()}
    # Fixed costs dominate for production-typical (small) sizes: 32B and
    # 2KB GETs are within ~50% of each other.
    assert get50[2048] < 1.5 * get50[32]
    # Per-byte costs only emerge at the largest size.
    assert get50[16384] > get50[32]
    # SETs are uniformly slower than GETs (RPC vs RMA).
    for size in SIZES:
        assert set50[size] > get50[size]
    # Nominal lookup latencies across the whole sweep (tens of us).
    assert all(v < 500e-6 for v in get50.values())
