"""Ablations of the design choices DESIGN.md calls out.

1. **Tearing / self-validation** — with multi-step entry writes (the
   real RMA hazard) checksum retries occur and no torn value escapes;
   with artificially atomic writes the retries vanish, showing the
   validation machinery is load-bearing, not overhead.
2. **First-responder quoruming vs primary/backup reads** — under an
   antagonist on the primary, first-responder reads keep latency flat
   while forced-primary reads degrade (the §8 rationale for quoruming
   over HydraDB/FaRM-style primary/backup).
3. **Eviction policy** — LRU vs ARC vs random hit rates under a
   zipf-plus-scan workload with constrained capacity (§4.2's
   configurable policies).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import drive, key_with_primary_shard, measure_gets, preload_keys, run_once

from repro.analysis import render_table
from repro.core import (BackendConfig, Cell, CellSpec, ClientConfig,
                        LookupStrategy, ReplicationMode)
from repro.sim import RandomStream, ZipfSampler


# ---------------------------------------------------------------------------
# Ablation 1: tearing
# ---------------------------------------------------------------------------

def run_tearing(atomic: bool):
    cell = Cell(CellSpec(
        mode=ReplicationMode.R3_2, num_shards=3, transport="pony",
        backend_config=BackendConfig(min_write_step=100e-6,
                                     atomic_entry_writes=atomic)))
    writer = cell.connect_client(strategy=LookupStrategy.TWO_R)
    reader = cell.connect_client(strategy=LookupStrategy.TWO_R)
    torn_escapes = [0]
    hits = [0]

    def setup():
        yield from writer.set(b"k", b"A" * 300)

    drive(cell, setup())

    def write_loop():
        for i in range(30):
            yield from writer.set(b"k", (b"%c" % (65 + i % 26)) * 300)

    def read_loop():
        end = cell.sim.now + 5e-3
        while cell.sim.now < end:
            result = yield from reader.get(b"k")
            if result.hit:
                hits[0] += 1
                if len(set(result.value)) != 1:
                    torn_escapes[0] += 1
            yield cell.sim.timeout(3e-6)

    cell.sim.process(write_loop())
    drive(cell, read_loop())
    return (reader.stats["torn_reads"], torn_escapes[0], hits[0])


def bench_ablation_tearing(benchmark):
    def experiment():
        return run_tearing(atomic=False), run_tearing(atomic=True)

    (real_retries, real_escapes, real_hits), \
        (atomic_retries, atomic_escapes, atomic_hits) = \
        run_once(benchmark, experiment)
    print()
    print(render_table(
        "Ablation: multi-step writes (tear window) vs atomic writes",
        ["mode", "torn reads caught", "torn values escaped", "hits"],
        [["multi-step (real RMA)", real_retries, real_escapes, real_hits],
         ["atomic (ablated)", atomic_retries, atomic_escapes, atomic_hits]]))
    # The tear window is real: validation catches it, nothing escapes.
    assert real_retries > 0
    assert real_escapes == 0
    # Remove the hazard and the retries disappear with it.
    assert atomic_retries == 0
    assert atomic_escapes == 0


# ---------------------------------------------------------------------------
# Ablation 2: first-responder vs forced-primary reads
# ---------------------------------------------------------------------------

def run_quorum_mode(force_primary: bool):
    cell = Cell(CellSpec(mode=ReplicationMode.R3_2, num_shards=3,
                         transport="pony"))
    client = cell.connect_client(
        strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(force_primary_data_fetch=force_primary))
    key = key_with_primary_shard(cell, 0)
    preload_keys(cell, client, [key], 4096)
    victim = cell.backend_by_task(cell.task_for_shard(0))
    cell.fabric.start_antagonist(
        victim.host,
        0.95 * cell.fabric.config.host_rate_bytes_per_sec,
        direction="both")
    cell.sim.run(until=cell.sim.now + 2e-3)
    recorder = measure_gets(cell, client, [key], 200, interval=20e-6)
    return recorder.percentile(50), recorder.percentile(99)


def bench_ablation_quorum_first_responder(benchmark):
    def experiment():
        return run_quorum_mode(False), run_quorum_mode(True)

    (fr50, fr99), (fp50, fp99) = run_once(benchmark, experiment)
    print()
    print(render_table(
        "Ablation: data fetch policy under a loaded primary (4KB, R=3.2)",
        ["policy", "50p (us)", "99p (us)"],
        [["first responder (CliqueMap)", fr50 * 1e6, fr99 * 1e6],
         ["forced primary (primary/backup style)", fp50 * 1e6, fp99 * 1e6]]))
    # First-responder reads dodge the loaded primary entirely.
    assert fp50 > 2 * fr50
    assert fp99 > 2 * fr99


# ---------------------------------------------------------------------------
# Ablation 3: eviction policies
# ---------------------------------------------------------------------------

def run_eviction(policy: str):
    cell = Cell(CellSpec(
        mode=ReplicationMode.R1, num_shards=1, transport="pony",
        backend_config=BackendConfig(
            eviction_policy=policy,
            data_initial_bytes=128 * 1024, data_virtual_limit=128 * 1024,
            slab_bytes=64 * 1024, num_buckets=2048, ways=7,
            overflow_rpc_fallback=False,
            index_resize_load_factor=2.0)))
    client = cell.connect_client(
        strategy=LookupStrategy.TWO_R,
        client_config=ClientConfig(touch_flush_interval=0.5e-3))
    stream = RandomStream(17, f"evict-{policy}")
    zipf = ZipfSampler(stream.child("keys"), n=400, s=1.1)
    hits = [0]
    lookups = [0]

    def app():
        # Values of ~900B: capacity ~ 120 resident entries of 400 hot keys.
        for i in range(120):
            yield from client.set(b"k-%d" % zipf.sample(), b"x" * 900)
        scan = 0
        for round_num in range(120):
            for _ in range(6):
                key = b"k-%d" % zipf.sample()
                result = yield from client.get(key)
                lookups[0] += 1
                if result.hit:
                    hits[0] += 1
                else:
                    yield from client.set(key, b"x" * 900)
            # Periodic cold scan pressure.
            for _ in range(2):
                yield from client.set(b"scan-%d" % scan, b"x" * 900)
                scan += 1
            yield cell.sim.timeout(0.2e-3)

    drive(cell, app())
    return hits[0] / max(1, lookups[0])


def bench_ablation_eviction_policies(benchmark):
    def experiment():
        return {policy: run_eviction(policy)
                for policy in ["lru", "arc", "random"]}

    rates = run_once(benchmark, experiment)
    print()
    print(render_table(
        "Ablation: eviction policy hit rates (zipf + scan, tight capacity)",
        ["policy", "hit rate"],
        [[p, f"{r:.3f}"] for p, r in rates.items()]))
    # Recency-aware policies beat random; ARC resists the scan at least
    # as well as LRU does.
    assert rates["lru"] > rates["random"]
    assert rates["arc"] > rates["random"]
