"""Figure 10: Ads and Geo object-size CDFs (§7.1).

Objects are typically small — at most a few KB, below the 5KB MTU — with
a tail of larger values; the Ads distribution sits to the right of Geo.
Prints the two CDFs side by side at the paper's log-scale checkpoints.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import render_table
from repro.net import MtuConfig
from repro.sim import RandomStream, percentile
from repro.workloads import ads_object_sizes, geo_object_sizes

SAMPLES = 30000
CHECKPOINT_SIZES = [128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536]


def run_experiment():
    stream = RandomStream(13, "fig10")
    ads = sorted(ads_object_sizes(stream.child("ads")).sample()
                 for _ in range(SAMPLES))
    geo = sorted(geo_object_sizes(stream.child("geo")).sample()
                 for _ in range(SAMPLES))
    return ads, geo


def cdf_at(sorted_samples, size):
    import bisect
    return bisect.bisect_right(sorted_samples, size) / len(sorted_samples)


def bench_fig10_object_size_cdfs(benchmark):
    ads, geo = run_once(benchmark, run_experiment)
    rows = [[size, f"{cdf_at(ads, size):.3f}", f"{cdf_at(geo, size):.3f}"]
            for size in CHECKPOINT_SIZES]
    print()
    print(render_table("Fig 10: object-size CDFs",
                       ["size (B)", "Ads CDF", "Geo CDF"], rows))
    print(f"   Ads: p50={percentile(ads, 50)}B  p99={percentile(ads, 99)}B")
    print(f"   Geo: p50={percentile(geo, 50)}B  p99={percentile(geo, 99)}B")

    mtu = MtuConfig().mtu_bytes
    # Geo's CDF sits left of Ads' at every checkpoint (Geo is smaller).
    for size in CHECKPOINT_SIZES:
        assert cdf_at(geo, size) >= cdf_at(ads, size)
    # Typical objects are small: medians of a few KB at most, below MTU.
    assert percentile(ads, 50) < mtu
    assert percentile(geo, 50) < 1024
    # But both have a tail of much larger objects.
    assert percentile(ads, 99.9) > 10 * percentile(ads, 50)
    assert percentile(geo, 99.9) > 10 * percentile(geo, 50)
