"""Figure 6: CliqueMap performance by client language (§6.2).

Three panels: (a) peak GET op rate, (b) CPU-us/op, (c) median latency at
a fixed moderate rate. The native C++ client is fastest; Java/Go/Python
shims pay marshal CPU plus named-pipe crossings to a C++ subprocess.
Shape to hold: cpp > java > go > py on op rate; reversed on CPU and
latency; even the slowest shim stays performance-competitive with a full
RPC stack.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import drive, run_once

from repro.analysis import render_table
from repro.core import Cell, CellSpec, ReplicationMode
from repro.shims import make_shim

LANGUAGES = ["cpp", "java", "go", "py"]
WORKERS = 4
PEAK_OPS_PER_WORKER = 150
PACED_OPS = 150
PACED_INTERVAL = 1e-3  # 1K GETs/sec/client, as in Fig 6c


def build_cell():
    return Cell(CellSpec(mode=ReplicationMode.R1, num_shards=4,
                         transport="pony"))


def measure_language(language: str):
    # Peak rate: WORKERS closed-loop workers sharing one shim/client.
    cell = build_cell()
    client = cell.connect_client()
    shim = make_shim(client, language)
    sim = cell.sim

    def setup():
        yield from shim.set(b"k", b"v" * 64)

    drive(cell, setup())
    cpu_before = client.host.ledger.total()
    start = sim.now

    def worker():
        for _ in range(PEAK_OPS_PER_WORKER):
            result = yield from shim.get(b"k")
            assert result.hit

    procs = [sim.process(worker()) for _ in range(WORKERS)]
    sim.run(until=sim.all_of(procs))
    elapsed = sim.now - start
    total_ops = WORKERS * PEAK_OPS_PER_WORKER
    op_rate = total_ops / elapsed
    cpu_us = (client.host.ledger.total() - cpu_before) / total_ops * 1e6

    # Paced latency: 1K GET/s, far from saturation.
    cell2 = build_cell()
    shim2 = make_shim(cell2.connect_client(), language)

    def paced():
        yield from shim2.set(b"k", b"v" * 64)
        latencies = []
        for _ in range(PACED_OPS):
            t0 = cell2.sim.now
            result = yield from shim2.get(b"k")
            assert result.hit
            latencies.append(cell2.sim.now - t0)
            yield cell2.sim.timeout(PACED_INTERVAL)
        latencies.sort()
        return latencies[len(latencies) // 2]

    median_latency = drive(cell2, paced())
    return op_rate, cpu_us, median_latency * 1e6


def run_experiment():
    return {lang: measure_language(lang) for lang in LANGUAGES}


def bench_fig06_client_languages(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [[lang, f"{rate:,.0f}", f"{cpu:.1f}", f"{lat:.1f}"]
            for lang, (rate, cpu, lat) in results.items()]
    print()
    print(render_table(
        "Fig 6: performance by client language",
        ["language", "(a) op rate (GET/s)", "(b) CPU-us/op",
         "(c) median latency (us)"], rows))

    rate = {lang: r for lang, (r, _c, _l) in results.items()}
    cpu = {lang: c for lang, (_r, c, _l) in results.items()}
    latency = {lang: l for lang, (_r, _c, l) in results.items()}
    # (a) op rate ordering: cpp fastest, py slowest.
    assert rate["cpp"] > rate["java"] > rate["go"] > rate["py"]
    # (b) CPU ordering reversed; the gap cpp->py spans well over an order
    # of magnitude (the paper plots panel b on a log axis).
    assert cpu["cpp"] < cpu["java"] < cpu["go"] < cpu["py"]
    assert cpu["py"] > 10 * max(cpu["cpp"], 1e-9)
    # (c) latency ordering: cpp lowest, py highest.
    assert latency["cpp"] < latency["java"] < latency["go"] < latency["py"]
