"""Scale smoke: a paper-sized step — 200-host cells, 100k ops end-to-end.

Two checks ride on one benchmark:

* **Throughput** — a 200-host R=3.2 cell (one backend task per shard)
  serves 100k batched GETs split across the pony and 1RMA transports,
  and the whole thing must finish in under 60 s of wall-clock. Before
  the kernel fast-path this took well over the budget; the events/sec
  and simulated-ops-per-wall-second land in ``BENCH_kernel.json``
  alongside the kernel stress numbers.
* **Equivalence** — the fast-path kernel must be an *optimization*, not
  a behavior change. The same seeded workload replayed on the verbatim
  pre-change kernel (``_legacy_kernel``) must produce an identical
  per-op outcome digest and consume the identical number of scheduling
  sequence numbers: same seed, same op outcomes, same event order.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once
from _legacy_kernel import LegacySimulator

from repro.analysis import run_scale_workload

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

NUM_HOSTS = 200
WALL_BUDGET_SECONDS = 60.0
PONY_OPS = 60_000
ONERMA_OPS = 40_000

# The equivalence replay runs the workload twice (once per kernel), so it
# uses a smaller cell to keep the double run cheap; equivalence is a
# property of the op path, not of the cell size.
EQUIV_HOSTS = 24
EQUIV_OPS = 2_000


def _run_scale():
    # The pony run carries the observability plane in scrape-only form:
    # the 200-host budget must hold with time-series scraping enabled.
    pony = run_scale_workload(transport="pony", num_hosts=NUM_HOSTS,
                              ops=PONY_OPS, batch=8, observe=True)
    onerma = run_scale_workload(transport="1rma", num_hosts=NUM_HOSTS,
                                ops=ONERMA_OPS, batch=8)
    return {"pony": pony, "1rma": onerma}


def bench_scale_cell(benchmark):
    result = run_once(benchmark, _run_scale)
    total_ops = 0
    total_wall = 0.0
    total_events = 0
    print()
    for transport, run in result.items():
        total_ops += run["ops"]
        total_wall += run["wall_seconds"]
        total_events += run["events"]
        print(f"  {transport:<5} hosts={NUM_HOSTS} ops={run['ops']:,} "
              f"wall={run['wall_seconds']:.1f}s "
              f"events/s={run['events_per_sec']:,.0f} "
              f"sim-ops/wall-s={run['ops_per_wall_sec']:,.0f} "
              f"hits={run['hits']:,} errors={run['errors']} "
              f"scrapes={run['scrapes']}")
    print(f"  total ops={total_ops:,} wall={total_wall:.1f}s "
          f"(budget {WALL_BUDGET_SECONDS:.0f}s)")

    assert total_ops >= 100_000, total_ops
    assert total_wall < WALL_BUDGET_SECONDS, (
        f"scale smoke too slow: {total_wall:.1f}s for {total_ops:,} ops")
    for transport, run in result.items():
        assert run["errors"] == 0, (transport, run)

    # Fold the scale datapoint into the kernel perf record.
    if OUTPUT.exists():
        record = json.loads(OUTPUT.read_text())
    else:
        record = {"benchmark": "kernel"}
    record["scale"] = {
        "num_hosts": NUM_HOSTS,
        "total_ops": total_ops,
        "total_wall_seconds": total_wall,
        "runs": {
            transport: {
                "ops": run["ops"],
                "wall_seconds": run["wall_seconds"],
                "events": run["events"],
                "events_per_sec": run["events_per_sec"],
                "ops_per_wall_sec": run["ops_per_wall_sec"],
                "digest": run["digest"],
            } for transport, run in result.items()
        },
    }
    OUTPUT.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {OUTPUT.name} (scale section)")


def bench_scale_digest_matches_legacy_kernel(benchmark):
    """Same seed, same outcomes: the fast path changes no behavior, and
    neither does enabling time-series scraping (clock taps consume no
    scheduling sequence numbers)."""
    def arms():
        live = run_scale_workload(num_hosts=EQUIV_HOSTS, ops=EQUIV_OPS)
        legacy = run_scale_workload(num_hosts=EQUIV_HOSTS, ops=EQUIV_OPS,
                                    sim=LegacySimulator())
        observed = run_scale_workload(num_hosts=EQUIV_HOSTS, ops=EQUIV_OPS,
                                      observe=True)
        return live, legacy, observed

    live, legacy, observed = run_once(benchmark, arms)
    print(f"\n  live     digest={live['digest']} events={live['events']:,}")
    print(f"  legacy   digest={legacy['digest']} "
          f"events={legacy['events']:,}")
    print(f"  observed digest={observed['digest']} "
          f"events={observed['events']:,} scrapes={observed['scrapes']:,}")
    assert live["digest"] == legacy["digest"], (live, legacy)
    assert live["events"] == legacy["events"], (live, legacy)
    assert live["sim_seconds"] == legacy["sim_seconds"], (live, legacy)
    assert observed["digest"] == live["digest"], (observed, live)
    assert observed["events"] == live["events"], (observed, live)
    assert observed["sim_seconds"] == live["sim_seconds"], (observed, live)
    assert observed["scrapes"] > 0, observed
