"""Figure 8: the Ads workload over time (§7.1).

GET rate far exceeds SET rate; lookups are heavily batched (30-300 KV at
p99.9) which makes the client the incast bottleneck and pushes p99.9 tail
latency far above the median; backfill SET bursts ride alongside steady
writes. Rows printed: time, GET/s, SET/s, latency percentiles.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import render_percentile_lines, render_table
from repro.workloads import AdsScenario, AdsWorkload


def run_experiment():
    scenario = AdsScenario(num_shards=6, num_clients=4, num_keys=800,
                           get_rate_per_client=2500.0,
                           write_rate_per_client=40.0,
                           backfill_period=1.0, backfill_fraction=0.05,
                           duration=4.0)
    workload = AdsWorkload(scenario)
    workload.preload()
    metrics = workload.run()
    return workload, metrics


def bench_fig08_ads_workload(benchmark):
    workload, metrics = run_once(benchmark, run_experiment)
    timeline = metrics.get_timeline
    print()
    print(render_table(
        "Fig 8: Ads workload summary", ["metric", "value"],
        [["GET ops", metrics.gets],
         ["GET/s", f"{metrics.gets / workload.scenario.duration:,.0f}"],
         ["SET/s (writes)",
          f"{metrics.sets / workload.scenario.duration:,.0f}"],
         ["SET/s (backfill)",
          f"{workload.backfill_sets / workload.scenario.duration:,.0f}"],
         ["hit rate", f"{metrics.hit_rate:.3f}"],
         ["GET p50 (us)", f"{metrics.get_latency.percentile(50) * 1e6:.0f}"],
         ["GET p99.9 (us)",
          f"{metrics.get_latency.percentile(99.9) * 1e6:.0f}"]]))
    print()
    print(render_percentile_lines(
        "Fig 8: Ads latency percentiles (us) and rate over time",
        [("50p", [(t, v * 1e6) for t, v in timeline.series(50)]),
         ("90p", [(t, v * 1e6) for t, v in timeline.series(90)]),
         ("99p", [(t, v * 1e6) for t, v in timeline.series(99)]),
         ("99.9p", [(t, v * 1e6) for t, v in timeline.series(99.9)]),
         ("GET/s", timeline.rate_series())],
        x_label="t (s)"))

    # Shapes: GETs dominate SETs by >10x; batching-driven incast pushes
    # the p99.9 tail an order of magnitude past the median; the cache
    # serves essentially all lookups.
    total_sets = metrics.sets + workload.backfill_sets
    assert metrics.gets > 10 * total_sets
    assert workload.backfill_sets > 0
    assert metrics.get_latency.percentile(99.9) > \
        5 * metrics.get_latency.percentile(50)
    assert metrics.hit_rate > 0.99
    assert metrics.get_errors == 0
