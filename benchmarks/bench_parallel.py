"""Sharded parallel federation: aggregate events/sec vs one event loop.

A 4-zone federation — each zone a full cell with fed clients (fan-out
writes + remote reads) and an aggregate client population — runs twice
on one seed: once sharded-but-sequential (one process, round-robin
windows) and once with one worker process per zone under the
conservative-lookahead coordinator (``repro.sim.parallel``,
ARCHITECTURE §13). ``compare_parallel`` asserts the two arms are
digest-equivalent *before* any speedup is reported: same per-zone op
digests, event counts, metric totals, and final clocks.

The acceptance metric is **critical-path speedup**:
``seq_cpu / (sum over windows of max-shard cpu + coordinator cpu)`` —
what wall clock converges to once the host actually has one core per
shard. CI containers routinely have a single core, where wall-clock
"speedup" of a CPU-bound run is noise; wall numbers are recorded
transparently and only asserted when ``os.cpu_count()`` provides the
parallelism (see the honesty note in ARCHITECTURE §13).

``REPRO_BENCH_PARALLEL_SCALE=ci`` shrinks the run for smoke jobs.
"""

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import run_once

from repro.analysis import (assert_digest_equivalent, compare_parallel,
                            run_federation_arm)
from repro.core import CellSpec, ZoneWorkloadSpec

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

ZONES = ["dc-a", "dc-b", "dc-c", "dc-d"]
NUM_SHARDS = 3                   # per-zone cell size
FED_CLIENTS = 4                  # closed-loop fed clients per zone
POPULATION_CLIENTS = 200         # modeled population per zone (PR 8)
POPULATION_RATE = 100.0          # offered GETs/s per modeled client
DURATION = 0.3                   # simulated seconds
SCALE = os.environ.get("REPRO_BENCH_PARALLEL_SCALE", "full")
if SCALE == "ci":
    POPULATION_CLIENTS = 100
    DURATION = 0.15

# Floors. Critical-path speedup on 4 symmetric zones calibrates near
# the ideal 4x; 2.5x catches a broken window protocol or a coordinator
# that became the bottleneck, not scheduler jitter. The throughput
# floor (aggregate events per critical-path second, parallel arm) is
# ~4x under fresh-container calibration and catches order-of-magnitude
# kernel/coordinator regressions.
SPEEDUP_CP_FLOOR = 2.5
EVENTS_PER_CRITICAL_SEC_FLOOR = 150_000.0
WALL_BUDGET_SECONDS = 300.0
# Wall-clock speedup is only meaningful with a core per worker plus
# one for the coordinator.
WALL_SPEEDUP_MIN_CORES = len(ZONES) + 1
WALL_SPEEDUP_FLOOR = 1.5


def _run_arms():
    workload = ZoneWorkloadSpec(
        clients=FED_CLIENTS,
        population_clients=POPULATION_CLIENTS,
        population_rate=POPULATION_RATE,
        population_drivers=4,
        population_keys=256)
    return compare_parallel(ZONES, cell_spec=CellSpec(num_shards=NUM_SHARDS),
                            workload=workload, duration=DURATION)


def bench_parallel_federation(benchmark):
    record = run_once(benchmark, _run_arms)
    seq, par = record["sequential"], record["parallel"]
    print()
    print(f"  zones={len(ZONES)} duration={record['duration']}s "
          f"scale={SCALE} cpu_count={record['cpu_count']}")
    print(f"  events={record['events']:,} windows={record['windows']} "
          f"messages_routed={record['messages_routed']}")
    print(f"  seq:  cpu={seq['critical_path_seconds']:.2f}s "
          f"wall={seq['wall_seconds']:.2f}s "
          f"events/cp-s={seq['events_per_critical_sec']:,.0f}")
    print(f"  par:  critical_path={par['critical_path_seconds']:.2f}s "
          f"(coordinator {par['coordinator_cpu_seconds']:.2f}s) "
          f"wall={par['wall_seconds']:.2f}s "
          f"events/cp-s={par['events_per_critical_sec']:,.0f}")
    print(f"  speedup: critical-path={record['speedup_critical_path']:.2f}x "
          f"wall={record['speedup_wall']:.2f}x "
          f"(wall asserted only at >={WALL_SPEEDUP_MIN_CORES} cores)")

    assert record["digest_equivalent"], "arms diverged"
    assert not record["leaked_children"], "worker processes leaked"
    assert record["events"] > 0 and record["messages_routed"] > 0, record
    wall_total = seq["wall_seconds"] + par["wall_seconds"]
    assert wall_total < WALL_BUDGET_SECONDS, (
        f"parallel smoke too slow: {wall_total:.1f}s for both arms")
    assert record["speedup_critical_path"] >= SPEEDUP_CP_FLOOR, (
        f"critical-path speedup regressed: "
        f"{record['speedup_critical_path']:.2f}x < {SPEEDUP_CP_FLOOR}x")
    assert par["events_per_critical_sec"] >= EVENTS_PER_CRITICAL_SEC_FLOOR, (
        f"events/critical-path-s regressed: "
        f"{par['events_per_critical_sec']:,.0f} "
        f"< floor {EVENTS_PER_CRITICAL_SEC_FLOOR:,.0f}")
    if (record["cpu_count"] or 0) >= WALL_SPEEDUP_MIN_CORES:
        assert record["speedup_wall"] >= WALL_SPEEDUP_FLOOR, (
            f"wall speedup regressed on a {record['cpu_count']}-core host: "
            f"{record['speedup_wall']:.2f}x < {WALL_SPEEDUP_FLOOR}x")

    out = {
        "benchmark": "parallel",
        "scale": SCALE,
        "floor_speedup_critical_path": SPEEDUP_CP_FLOOR,
        "floor_events_per_critical_sec": EVENTS_PER_CRITICAL_SEC_FLOOR,
        "run": record,
    }
    OUTPUT.write_text(json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"  wrote {OUTPUT.name}")


def bench_parallel_tracing_determinism(benchmark):
    """Observability must be a pure tap: the same seeded federation run
    untraced, traced (with tail sampling), and traced + flight recorder
    must produce bit-identical digests. Tracing draws its ids from a
    tracer-private stream and the flight recorder only reads the clock,
    so any digest drift here means instrumentation perturbed scheduling
    or shared RNG state — the exact bug class this guard exists for.
    """
    zones = ["dc-a", "dc-b"]
    arms = {
        "untraced": CellSpec(num_shards=NUM_SHARDS, tracing=False),
        "traced": CellSpec(num_shards=NUM_SHARDS, tracing=True,
                           trace_sample_every=5,
                           trace_slow_threshold=5e-4),
        "traced+flight": CellSpec(num_shards=NUM_SHARDS, tracing=True,
                                  trace_sample_every=5,
                                  trace_slow_threshold=5e-4,
                                  flight_recorder=True),
    }

    def run_three_arms():
        workload = ZoneWorkloadSpec(clients=2, population_clients=20,
                                    population_rate=50.0,
                                    population_keys=64)
        return {name: run_federation_arm(zones, cell_spec=spec,
                                         workload=workload, duration=0.05,
                                         mode="sequential")
                for name, spec in arms.items()}

    reports = run_once(benchmark, run_three_arms)
    baseline = reports["untraced"]
    for name in ("traced", "traced+flight"):
        assert_digest_equivalent(baseline, reports[name])
    ops = sum(d["ops"] for d in baseline.digests)
    assert ops > 0, "determinism guard ran no ops"
    print(f"\n  three-arm digest check: {ops:,} ops x "
          f"{len(arms)} arms, all digests identical")
